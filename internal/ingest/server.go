package ingest

import (
	"bufio"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"ebbiot/internal/events"
)

// ServerConfig parameterises a Server.
type ServerConfig struct {
	// Streams lists the stream IDs the deployment expects; each becomes a
	// NetSource with one live session. Required.
	Streams []string
	// Token, when non-empty, is the shared secret every handshake must
	// present (compared in constant time).
	Token string
	// Res is the deployment's sensor resolution; handshakes advertising a
	// different one are rejected, and decoded events are bounds-checked
	// against it. The zero value accepts any resolution and skips the
	// address check.
	Res events.Resolution
	// QueueBatches / Policy / FailFast configure every stream's NetSource
	// (see NetSourceConfig).
	QueueBatches int
	Policy       DropPolicy
	FailFast     bool
	// IdleTimeout bounds the wait for the handshake and for each
	// subsequent frame; a connection that stalls longer faults as a
	// stalled writer. 0 means 30 seconds.
	IdleTimeout time.Duration
	// ResumeGrace is how long a disconnected wire-v2 stream stays in the
	// resumable state before its pending fault is committed. While the
	// grace window is open the session's NetSource keeps feeding queued
	// batches to the pipeline and a RESUME handshake continues the stream
	// where it left off. 0 means 30 seconds; negative disables resume
	// entirely (every disconnect faults immediately, v1 semantics).
	ResumeGrace time.Duration
	// AckEvery is the cadence, in received batch frames, of the cumulative
	// ACK frames sent to wire-v2 clients (an ACK is also sent on EOF).
	// 0 means 8.
	AckEvery int
	// Logf, when non-nil, receives one line per connection-level event
	// (accept, reject, resume, fault, clean end).
	Logf func(format string, args ...any)
}

// ErrServerClosed is the fault recorded on streams still open when the
// server shuts down.
var ErrServerClosed = errors.New("ingest: server closed")

// defaultResumeGrace is the ResumeGrace applied when the config leaves it
// zero.
const defaultResumeGrace = 30 * time.Second

// sessState is the lifecycle of one stream's ingest session.
type sessState int

const (
	// sessIdle: no connection has claimed the stream yet.
	sessIdle sessState = iota
	// sessActive: a connection is feeding the stream.
	sessActive
	// sessGrace: the connection dropped but the session is resumable — a
	// RESUME handshake within the grace window continues it.
	sessGrace
	// sessClosed: the stream finished (clean EOF), faulted for real, or
	// the server shut down. Terminal.
	sessClosed
)

// session is the server-side state of one stream across connections: the
// NetSource survives disconnects, the epoch counts connections, and the
// grace timer bounds how long a dead connection may be resumed.
type session struct {
	id  string
	src *NetSource

	state sessState
	// epoch is 1 for the first accepted connection and bumped on every
	// accepted resume; it also guards the grace timer against firing on a
	// session that was resumed and dropped again.
	epoch uint64
	// conn is the connection currently feeding the session (nil unless
	// active). A frame-loop goroutine only transitions session state while
	// it is still the owner — a taken-over connection's death is ignored.
	conn       net.Conn
	graceTimer *time.Timer
	pendingErr error
}

// Server accepts N concurrent framed-TCP sensor connections and routes
// each authenticated stream ID to its NetSource. Build the pipeline's
// streams from Source(id) and run the Runner as usual: the run completes
// when every stream has finished (clean EOF frame) or faulted. Wire-v2
// clients may disconnect and resume mid-stream (see docs/INGEST.md);
// the stream's NetSource — and with it the pipeline — never notices
// beyond a pause.
type Server struct {
	cfg net.ListenConfig

	scfg ServerConfig
	ln   net.Listener

	mu       sync.Mutex
	sessions map[string]*session
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

// Listen binds addr and starts accepting connections.
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	if len(cfg.Streams) == 0 {
		return nil, fmt.Errorf("ingest: no expected streams")
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	if cfg.ResumeGrace == 0 {
		cfg.ResumeGrace = defaultResumeGrace
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 8
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: listen: %w", err)
	}
	s := &Server{
		scfg:     cfg,
		ln:       ln,
		sessions: make(map[string]*session, len(cfg.Streams)),
		conns:    make(map[net.Conn]struct{}),
	}
	for _, id := range cfg.Streams {
		if id == "" || len(id) > maxStreamIDLen {
			ln.Close()
			return nil, fmt.Errorf("ingest: invalid stream id %q", id)
		}
		if _, dup := s.sessions[id]; dup {
			ln.Close()
			return nil, fmt.Errorf("ingest: duplicate stream id %q", id)
		}
		s.sessions[id] = &session{
			id: id,
			src: NewNetSource(NetSourceConfig{
				QueueBatches: cfg.QueueBatches,
				Policy:       cfg.Policy,
				FailFast:     cfg.FailFast,
			}),
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Source returns the NetSource for one expected stream ID, or nil for an
// unknown ID. Wire it as the pipeline Stream's Source.
func (s *Server) Source(id string) *NetSource {
	if sess := s.sessions[id]; sess != nil {
		return sess.src
	}
	return nil
}

// Close stops accepting, severs live connections, cancels resume grace
// windows and ends every stream still open with ErrServerClosed (tolerant
// sources EOF, FailFast ones error). Safe to call more than once; blocks
// until the connection goroutines have drained.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	var sessions []*session
	if !already {
		for _, sess := range s.sessions {
			if sess.graceTimer != nil {
				sess.graceTimer.Stop()
				sess.graceTimer = nil
			}
			sess.state = sessClosed
			sessions = append(sessions, sess)
		}
	}
	s.mu.Unlock()
	if !already {
		s.ln.Close()
		// Sources are failed before their connections are severed, so the
		// recorded fault is the shutdown itself, not the read error the
		// severed connection provokes in the frame loop.
		for _, sess := range sessions {
			sess.src.setResumable(false)
			sess.src.fail(ErrServerClosed)
		}
		for _, c := range conns {
			c.Close()
		}
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.scfg.Logf != nil {
		s.scfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// resumeEnabled reports whether the deployment allows session resume at
// all.
func (s *Server) resumeEnabled() bool { return s.scfg.ResumeGrace > 0 }

// claim attaches conn to the stream named in hello, fresh or resumed.
// On success it returns the session plus the v2 reply payload (resume
// point and epoch); otherwise the rejection status.
func (s *Server) claim(hello Hello, conn net.Conn) (*session, helloReply, uint8) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, helloReply{}, StatusStreamBusy
	}
	sess, ok := s.sessions[hello.StreamID]
	if !ok {
		return nil, helloReply{}, StatusUnknownStream
	}
	resume := hello.Resume && hello.Version >= 2 && s.resumeEnabled()
	switch sess.state {
	case sessIdle:
		// Fresh claim. A RESUME against an idle session is also accepted —
		// the client outlived a server restart; the reply's resume point
		// (its own lastAck, below) tells it where this server wants the
		// stream picked up.
		sess.state = sessActive
		sess.epoch = 1
		sess.conn = conn
	case sessActive:
		if !resume {
			return nil, helloReply{}, StatusStreamBusy
		}
		// Takeover: the client saw a connection death the server has not
		// noticed yet (half-open TCP). The epoch guard makes the old
		// frame-loop goroutine's exit a no-op.
		old := sess.conn
		sess.conn = conn
		sess.epoch++
		sess.src.noteResume()
		if old != nil {
			old.Close()
		}
	case sessGrace:
		if !resume {
			return nil, helloReply{}, StatusStreamBusy
		}
		if sess.graceTimer != nil {
			sess.graceTimer.Stop()
			sess.graceTimer = nil
		}
		sess.pendingErr = nil
		sess.state = sessActive
		sess.conn = conn
		sess.epoch++
		sess.src.noteResume()
	default: // sessClosed
		return nil, helloReply{}, StatusStreamBusy
	}
	// The resume point is the server's high-water mark, floored by what
	// the client has already seen acknowledged (a fresh server must not
	// make a long-lived client replay its whole ring into a new run).
	resumeFrom := sess.src.LastSeq()
	if hello.LastAck > resumeFrom {
		resumeFrom = hello.LastAck
		sess.src.primeSeq(resumeFrom)
	}
	return sess, helloReply{ResumeFrom: resumeFrom, Epoch: sess.epoch}, StatusOK
}

// release ends conn's ownership of sess after the frame loop exits.
// A clean end (err == nil) closes the session; a fault either opens the
// resume grace window (transport-class faults from v2 clients) or commits
// immediately. Stale connections — taken over by a resume — change
// nothing.
func (s *Server) release(sess *session, conn net.Conn, err error, resumable bool) {
	s.mu.Lock()
	if s.closed || sess.conn != conn {
		s.mu.Unlock()
		return
	}
	sess.conn = nil
	if err == nil {
		sess.state = sessClosed
		s.mu.Unlock()
		return
	}
	sess.src.setConnected(false)
	if resumable && s.resumeEnabled() {
		sess.state = sessGrace
		sess.pendingErr = err
		epoch := sess.epoch
		sess.graceTimer = time.AfterFunc(s.scfg.ResumeGrace, func() { s.expireGrace(sess, epoch) })
		sess.src.setResumable(true)
		s.mu.Unlock()
		s.logf("ingest: stream %q: resumable for %v: %v", sess.id, s.scfg.ResumeGrace, err)
		return
	}
	sess.state = sessClosed
	s.mu.Unlock()
	sess.src.fail(err)
}

// expireGrace commits the pending fault of a session whose grace window
// ran out without a resume. The epoch guard skips sessions that were
// resumed (and possibly dropped again) since the timer was armed.
func (s *Server) expireGrace(sess *session, epoch uint64) {
	s.mu.Lock()
	if s.closed || sess.state != sessGrace || sess.epoch != epoch {
		s.mu.Unlock()
		return
	}
	sess.state = sessClosed
	err := fmt.Errorf("ingest: stream %q: resume grace expired after %v: %w",
		sess.id, s.scfg.ResumeGrace, sess.pendingErr)
	sess.pendingErr = nil
	s.mu.Unlock()
	sess.src.setResumable(false)
	sess.src.fail(err)
	s.logf("ingest: stream %q: resume grace expired", sess.id)
}

// serveConn runs one connection to completion: handshake, status reply,
// then the frame loop feeding the stream's NetSource.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	_ = conn.SetReadDeadline(time.Now().Add(s.scfg.IdleTimeout))
	br := bufio.NewReaderSize(conn, 64<<10)
	hello, err := readHandshake(br)
	if err != nil {
		s.logf("ingest: %s: handshake: %v", conn.RemoteAddr(), err)
		_, _ = conn.Write([]byte{StatusBadHandshake})
		return
	}
	reject := func(code uint8) {
		s.logf("ingest: %s: stream %q rejected: %s", conn.RemoteAddr(), hello.StreamID, statusText(code))
		_, _ = conn.Write([]byte{code})
	}
	if s.scfg.Token != "" &&
		subtle.ConstantTimeCompare([]byte(hello.Token), []byte(s.scfg.Token)) != 1 {
		reject(StatusBadToken)
		return
	}
	if s.scfg.Res.A > 0 && hello.Res != s.scfg.Res {
		reject(StatusResolutionMismatch)
		return
	}
	sess, rep, code := s.claim(hello, conn)
	if code != StatusOK {
		reject(code)
		return
	}
	src := sess.src
	_ = conn.SetWriteDeadline(time.Now().Add(s.scfg.IdleTimeout))
	if _, err := conn.Write(appendHelloReply(nil, hello.Version, rep)); err != nil {
		s.release(sess, conn, fmt.Errorf("ingest: handshake reply: %w", err), hello.Version >= 2)
		return
	}
	if hello.Resume && rep.Epoch > 1 {
		s.logf("ingest: %s: stream %q resumed (epoch %d, from seq %d)",
			conn.RemoteAddr(), hello.StreamID, rep.Epoch, rep.ResumeFrom)
	} else {
		s.logf("ingest: %s: stream %q connected", conn.RemoteAddr(), hello.StreamID)
	}
	src.setEpoch(rep.Epoch)
	src.setResumable(false)
	src.setConnected(true)

	// sendAck pushes a cumulative ACK to a v2 client; an undeliverable ACK
	// means the connection is dying, which the next read surfaces.
	v2 := hello.Version >= 2
	var ackBuf []byte
	sendAck := func(seq uint64) error {
		if !v2 {
			return nil
		}
		ackBuf = appendAckFrame(ackBuf[:0], seq)
		_ = conn.SetWriteDeadline(time.Now().Add(s.scfg.IdleTimeout))
		_, err := conn.Write(ackBuf)
		return err
	}

	dec := newDecoder(br, s.scfg.Res)
	sinceAck := 0
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.scfg.IdleTimeout))
		f, err := dec.next()
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			// Connection closed on a frame boundary but without the EOF
			// frame: the sensor died mid-stream, not a clean finish.
			s.release(sess, conn, fmt.Errorf("ingest: stream %q: disconnect without EOF frame", hello.StreamID), v2)
			s.logf("ingest: stream %q: disconnect without EOF frame", hello.StreamID)
			return
		case errors.Is(err, io.ErrUnexpectedEOF):
			s.release(sess, conn, fmt.Errorf("ingest: stream %q: torn frame: connection dropped mid-frame", hello.StreamID), v2)
			s.logf("ingest: stream %q: torn frame", hello.StreamID)
			return
		case errors.Is(err, os.ErrDeadlineExceeded):
			s.release(sess, conn, fmt.Errorf("ingest: stream %q: stalled writer: no frame within %v", hello.StreamID, s.scfg.IdleTimeout), v2)
			s.logf("ingest: stream %q: stalled writer", hello.StreamID)
			return
		case errors.Is(err, ErrChecksum):
			// Transit corruption: the bytes, not the sender, are suspect —
			// a resumed session replays them intact.
			s.release(sess, conn, fmt.Errorf("ingest: stream %q: %w", hello.StreamID, err), v2)
			s.logf("ingest: stream %q: %v", hello.StreamID, err)
			return
		default:
			// Protocol violations are sender bugs; resuming would replay
			// the same garbage, so the fault commits immediately.
			s.release(sess, conn, fmt.Errorf("ingest: stream %q: %w", hello.StreamID, err), false)
			s.logf("ingest: stream %q: %v", hello.StreamID, err)
			return
		}
		switch f.typ {
		case frameEOF:
			// Acknowledge the EOF itself so a v2 client's Close can stop
			// waiting, then finish the stream.
			_ = sendAck(f.seq)
			s.release(sess, conn, nil, false)
			src.finish()
			s.logf("ingest: stream %q: clean EOF after seq %d", hello.StreamID, f.seq)
			return
		case frameAck:
			// ACK frames only flow server→client; one arriving here is a
			// protocol violation.
			err := fmt.Errorf("%w: client sent ACK frame", ErrBadFrame)
			s.release(sess, conn, fmt.Errorf("ingest: stream %q: %w", hello.StreamID, err), false)
			s.logf("ingest: stream %q: %v", hello.StreamID, err)
			return
		}
		if err := src.offer(f.seq, f.evs); err != nil {
			if !errors.Is(err, io.ErrClosedPipe) {
				s.release(sess, conn, err, false)
			}
			s.logf("ingest: stream %q: %v", hello.StreamID, err)
			return
		}
		if sinceAck++; sinceAck >= s.scfg.AckEvery {
			sinceAck = 0
			if err := sendAck(src.LastSeq()); err != nil {
				s.release(sess, conn, fmt.Errorf("ingest: stream %q: ack write: %w", hello.StreamID, err), v2)
				s.logf("ingest: stream %q: ack write: %v", hello.StreamID, err)
				return
			}
		}
	}
}
