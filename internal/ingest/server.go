package ingest

import (
	"bufio"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"ebbiot/internal/events"
)

// ServerConfig parameterises a Server.
type ServerConfig struct {
	// Streams lists the stream IDs the deployment expects; each becomes a
	// NetSource and exactly one connection may claim it. Required.
	Streams []string
	// Token, when non-empty, is the shared secret every handshake must
	// present (compared in constant time).
	Token string
	// Res is the deployment's sensor resolution; handshakes advertising a
	// different one are rejected, and decoded events are bounds-checked
	// against it. The zero value accepts any resolution and skips the
	// address check.
	Res events.Resolution
	// QueueBatches / Policy / FailFast configure every stream's NetSource
	// (see NetSourceConfig).
	QueueBatches int
	Policy       DropPolicy
	FailFast     bool
	// IdleTimeout bounds the wait for the handshake and for each
	// subsequent frame; a connection that stalls longer faults as a
	// stalled writer. 0 means 30 seconds.
	IdleTimeout time.Duration
	// Logf, when non-nil, receives one line per connection-level event
	// (accept, reject, fault, clean end).
	Logf func(format string, args ...any)
}

// ErrServerClosed is the fault recorded on streams still open when the
// server shuts down.
var ErrServerClosed = errors.New("ingest: server closed")

// Server accepts N concurrent framed-TCP sensor connections and routes
// each authenticated stream ID to its NetSource. Build the pipeline's
// streams from Source(id) and run the Runner as usual: the run completes
// when every stream has finished (clean EOF frame) or faulted.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu      sync.Mutex
	sources map[string]*NetSource
	claimed map[string]bool
	conns   map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup
}

// Listen binds addr and starts accepting connections.
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	if len(cfg.Streams) == 0 {
		return nil, fmt.Errorf("ingest: no expected streams")
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: listen: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		sources: make(map[string]*NetSource, len(cfg.Streams)),
		claimed: make(map[string]bool, len(cfg.Streams)),
		conns:   make(map[net.Conn]struct{}),
	}
	for _, id := range cfg.Streams {
		if id == "" || len(id) > maxStreamIDLen {
			ln.Close()
			return nil, fmt.Errorf("ingest: invalid stream id %q", id)
		}
		if _, dup := s.sources[id]; dup {
			ln.Close()
			return nil, fmt.Errorf("ingest: duplicate stream id %q", id)
		}
		s.sources[id] = NewNetSource(NetSourceConfig{
			QueueBatches: cfg.QueueBatches,
			Policy:       cfg.Policy,
			FailFast:     cfg.FailFast,
		})
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Source returns the NetSource for one expected stream ID, or nil for an
// unknown ID. Wire it as the pipeline Stream's Source.
func (s *Server) Source(id string) *NetSource { return s.sources[id] }

// Close stops accepting, severs live connections and ends every stream
// still open with ErrServerClosed (tolerant sources EOF, FailFast ones
// error). Safe to call more than once; blocks until the connection
// goroutines have drained.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if !already {
		s.ln.Close()
		// Sources are failed before their connections are severed, so the
		// recorded fault is the shutdown itself, not the read error the
		// severed connection provokes in the frame loop.
		for _, src := range s.sources {
			src.fail(ErrServerClosed)
		}
		for _, c := range conns {
			c.Close()
		}
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// claim reserves a stream for one connection; a stream is claimable once.
func (s *Server) claim(id string) (*NetSource, uint8) {
	s.mu.Lock()
	defer s.mu.Unlock()
	src, ok := s.sources[id]
	if !ok {
		return nil, StatusUnknownStream
	}
	if s.claimed[id] {
		return nil, StatusStreamBusy
	}
	s.claimed[id] = true
	return src, StatusOK
}

// serveConn runs one connection to completion: handshake, status reply,
// then the frame loop feeding the stream's NetSource.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	br := bufio.NewReaderSize(conn, 64<<10)
	hello, err := readHandshake(br)
	if err != nil {
		s.logf("ingest: %s: handshake: %v", conn.RemoteAddr(), err)
		_, _ = conn.Write([]byte{StatusBadHandshake})
		return
	}
	reject := func(code uint8) {
		s.logf("ingest: %s: stream %q rejected: %s", conn.RemoteAddr(), hello.StreamID, statusText(code))
		_, _ = conn.Write([]byte{code})
	}
	if s.cfg.Token != "" &&
		subtle.ConstantTimeCompare([]byte(hello.Token), []byte(s.cfg.Token)) != 1 {
		reject(StatusBadToken)
		return
	}
	if s.cfg.Res.A > 0 && hello.Res != s.cfg.Res {
		reject(StatusResolutionMismatch)
		return
	}
	src, code := s.claim(hello.StreamID)
	if code != StatusOK {
		reject(code)
		return
	}
	if _, err := conn.Write([]byte{StatusOK}); err != nil {
		src.fail(fmt.Errorf("ingest: handshake reply: %w", err))
		return
	}
	s.logf("ingest: %s: stream %q connected", conn.RemoteAddr(), hello.StreamID)
	src.setConnected(true)

	dec := newDecoder(br, s.cfg.Res)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		f, err := dec.next()
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			// Connection closed on a frame boundary but without the EOF
			// frame: the sensor died mid-stream, not a clean finish.
			src.fail(fmt.Errorf("ingest: stream %q: disconnect without EOF frame", hello.StreamID))
			s.logf("ingest: stream %q: disconnect without EOF frame", hello.StreamID)
			return
		case errors.Is(err, io.ErrUnexpectedEOF):
			src.fail(fmt.Errorf("ingest: stream %q: torn frame: connection dropped mid-frame", hello.StreamID))
			s.logf("ingest: stream %q: torn frame", hello.StreamID)
			return
		case errors.Is(err, os.ErrDeadlineExceeded):
			src.fail(fmt.Errorf("ingest: stream %q: stalled writer: no frame within %v", hello.StreamID, s.cfg.IdleTimeout))
			s.logf("ingest: stream %q: stalled writer", hello.StreamID)
			return
		default:
			src.fail(fmt.Errorf("ingest: stream %q: %w", hello.StreamID, err))
			s.logf("ingest: stream %q: %v", hello.StreamID, err)
			return
		}
		if f.typ == frameEOF {
			src.finish()
			s.logf("ingest: stream %q: clean EOF after seq %d", hello.StreamID, f.seq)
			return
		}
		if err := src.offer(f.seq, f.evs); err != nil {
			if !errors.Is(err, io.ErrClosedPipe) {
				src.fail(err)
			}
			s.logf("ingest: stream %q: %v", hello.StreamID, err)
			return
		}
	}
}
