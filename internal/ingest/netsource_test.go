package ingest

import (
	"errors"
	"io"
	"sync"
	"testing"

	"ebbiot/internal/events"
)

// drain consumes src to EOF over fixed windows and returns everything
// delivered plus the terminal error.
func drain(src *NetSource, windowUS int64) ([]events.Event, error) {
	var out []events.Event
	for start := int64(0); ; start += windowUS {
		var err error
		out, err = src.NextWindow(out, start, start+windowUS)
		if err != nil {
			return out, err
		}
	}
}

func TestNetSourceDeliversInOrder(t *testing.T) {
	src := NewNetSource(NetSourceConfig{})
	want := testEvents(300, 0)
	// Push as three batches of 100, cut at awkward offsets vs the 77us
	// consumer windows.
	for i := 0; i < 3; i++ {
		if err := src.offer(uint64(i+1), want[i*100:(i+1)*100]); err != nil {
			t.Fatal(err)
		}
	}
	src.finish()
	got, err := drain(src, 77)
	if err != io.EOF {
		t.Fatalf("terminal error: got %v, want io.EOF", err)
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %v want %v", i, got[i], want[i])
		}
	}
	st := src.SourceStats()
	if st.Batches != 3 || st.Events != 300 || st.DroppedBatches != 0 || st.DroppedEvents != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNetSourceBlockPolicyLosesNothing(t *testing.T) {
	src := NewNetSource(NetSourceConfig{QueueBatches: 2, Policy: Block})
	const batches = 20
	var producerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			evs := testEvents(50, int64(i*1000))
			if err := src.offer(uint64(i+1), evs); err != nil {
				producerErr = err
				return
			}
		}
		src.finish()
	}()
	got, err := drain(src, 333)
	wg.Wait()
	if producerErr != nil {
		t.Fatal(producerErr)
	}
	if err != io.EOF {
		t.Fatalf("terminal error: got %v, want io.EOF", err)
	}
	if len(got) != batches*50 {
		t.Fatalf("delivered %d events, want %d", len(got), batches*50)
	}
	st := src.SourceStats()
	if st.DroppedBatches != 0 || st.DroppedEvents != 0 {
		t.Fatalf("block policy dropped: %+v", st)
	}
}

func TestNetSourceDropOldest(t *testing.T) {
	src := NewNetSource(NetSourceConfig{QueueBatches: 2, Policy: DropOldest})
	// Four batches into a depth-2 queue with no consumer: batches 1 and 2
	// must be evicted, 3 and 4 survive.
	for i := 0; i < 4; i++ {
		if err := src.offer(uint64(i+1), testEvents(10, int64(i*1000))); err != nil {
			t.Fatal(err)
		}
	}
	src.finish()
	got, err := drain(src, 10_000)
	if err != io.EOF {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("delivered %d events, want 20", len(got))
	}
	if got[0].T != 2000 {
		t.Fatalf("first surviving event at t=%d, want 2000 (batches 1-2 evicted)", got[0].T)
	}
	st := src.SourceStats()
	if st.Batches != 4 || st.Events != 40 || st.DroppedBatches != 2 || st.DroppedEvents != 20 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNetSourceDropNewest(t *testing.T) {
	src := NewNetSource(NetSourceConfig{QueueBatches: 2, Policy: DropNewest})
	for i := 0; i < 4; i++ {
		if err := src.offer(uint64(i+1), testEvents(10, int64(i*1000))); err != nil {
			t.Fatal(err)
		}
	}
	src.finish()
	got, err := drain(src, 10_000)
	if err != io.EOF {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("delivered %d events, want 20", len(got))
	}
	if last := got[len(got)-1].T; last != 1009 {
		t.Fatalf("last surviving event at t=%d, want 1009 (batches 3-4 discarded)", last)
	}
	st := src.SourceStats()
	if st.DroppedBatches != 2 || st.DroppedEvents != 20 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNetSourceSeqDiscipline(t *testing.T) {
	src := NewNetSource(NetSourceConfig{})
	if err := src.offer(1, testEvents(5, 0)); err != nil {
		t.Fatal(err)
	}
	// Exact duplicate of batch 1.
	if err := src.offer(1, testEvents(5, 0)); err != nil {
		t.Fatal(err)
	}
	// Gap: 2 and 3 never arrive.
	if err := src.offer(4, testEvents(5, 100)); err != nil {
		t.Fatal(err)
	}
	// Reordered: an old sequence number after a newer one.
	if err := src.offer(2, testEvents(5, 50)); err != nil {
		t.Fatal(err)
	}
	src.finish()
	got, err := drain(src, 1000)
	if err != io.EOF {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d events, want 10 (dup and reordered batches dropped)", len(got))
	}
	st := src.SourceStats()
	if st.DupBatches != 2 {
		t.Fatalf("DupBatches = %d, want 2", st.DupBatches)
	}
	if st.SeqGaps != 2 {
		t.Fatalf("SeqGaps = %d, want 2", st.SeqGaps)
	}
	if st.DroppedEvents != 10 {
		t.Fatalf("DroppedEvents = %d, want 10", st.DroppedEvents)
	}
}

func TestNetSourceHeartbeat(t *testing.T) {
	src := NewNetSource(NetSourceConfig{})
	if err := src.offer(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := src.offer(2, testEvents(3, 0)); err != nil {
		t.Fatal(err)
	}
	src.finish()
	got, err := drain(src, 1000)
	if err != io.EOF || len(got) != 3 {
		t.Fatalf("got %d events, err %v", len(got), err)
	}
	st := src.SourceStats()
	if st.Batches != 2 || st.Events != 3 || st.SeqGaps != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNetSourceRejectsTimeRegression(t *testing.T) {
	src := NewNetSource(NetSourceConfig{})
	if err := src.offer(1, testEvents(5, 1000)); err != nil {
		t.Fatal(err)
	}
	err := src.offer(2, testEvents(5, 0))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("time-regressing batch: got %v, want ErrBadFrame", err)
	}
}

func TestNetSourceOfferAfterClose(t *testing.T) {
	src := NewNetSource(NetSourceConfig{})
	src.finish()
	if err := src.offer(1, testEvents(1, 0)); err != io.ErrClosedPipe {
		t.Fatalf("offer after close: got %v, want io.ErrClosedPipe", err)
	}
}

func TestNetSourceFaultTolerantByDefault(t *testing.T) {
	src := NewNetSource(NetSourceConfig{})
	if err := src.offer(1, testEvents(5, 0)); err != nil {
		t.Fatal(err)
	}
	src.fail(io.ErrUnexpectedEOF)
	got, err := drain(src, 1000)
	if err != io.EOF {
		t.Fatalf("tolerant stream must end as EOF, got %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("queued batch must survive the fault: got %d events", len(got))
	}
	st := src.SourceStats()
	if st.Faults != 1 || st.LastError == "" {
		t.Fatalf("fault not recorded: %+v", st)
	}
	// A second fault after close must not double-count.
	src.fail(io.ErrUnexpectedEOF)
	if st := src.SourceStats(); st.Faults != 1 {
		t.Fatalf("fault double-counted: %+v", st)
	}
}

func TestNetSourceFailFastSurfacesFault(t *testing.T) {
	src := NewNetSource(NetSourceConfig{FailFast: true})
	if err := src.offer(1, testEvents(5, 0)); err != nil {
		t.Fatal(err)
	}
	src.fail(io.ErrUnexpectedEOF)
	got, err := drain(src, 1000)
	if err == nil || err == io.EOF || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("fail-fast stream: got %v, want wrapped io.ErrUnexpectedEOF", err)
	}
	// Queued data is still drained before the error surfaces.
	if len(got) != 5 {
		t.Fatalf("got %d events before the fault surfaced, want 5", len(got))
	}
}

func TestParseDropPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want DropPolicy
	}{{"block", Block}, {"drop-oldest", DropOldest}, {"drop-newest", DropNewest}} {
		got, err := ParseDropPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseDropPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseDropPolicy("sometimes"); err == nil {
		t.Error("unknown policy accepted")
	}
}
