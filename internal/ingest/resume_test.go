package ingest

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"ebbiot/internal/events"
	"ebbiot/internal/pipeline"
)

// TestResumeSurvivesConnectionKill is the basic self-healing path: the
// connection dies mid-stream, the sink reconnects with the RESUME handshake
// and replays its unacknowledged tail, and the server delivers every event
// exactly once with the session epoch bumped — no fault recorded.
func TestResumeSurvivesConnectionKill(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}, AckEvery: 2})
	ds, err := Dial(srv.Addr().String(), DialConfig{
		StreamID:      "cam0",
		ResumeRetries: 5,
		ResumeBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const batches, per = 10, 20
	for b := 0; b < batches; b++ {
		if b == 4 {
			ds.breakConn() // the next Send hits a dead socket and must self-heal
		}
		if err := ds.Send(testEvents(per, int64(b*1000))); err != nil {
			t.Fatalf("Send after kill: %v", err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st := waitStats(t, srv.Source("cam0"), "clean EOF after resume", func(st pipeline.SourceStats) bool {
		return !st.Connected && !st.Resumable && st.Events == batches*per
	})
	if st.Faults != 0 {
		t.Fatalf("resumed stream must not fault: %+v", st)
	}
	if st.Resumes != 1 || st.Epoch != 2 {
		t.Fatalf("resumes=%d epoch=%d, want 1 and 2", st.Resumes, st.Epoch)
	}
	if st.SeqGaps != 0 {
		t.Fatalf("replay must keep the sequence contiguous: %+v", st)
	}
	cs := ds.Stats()
	if cs.Resumes != 1 || cs.Replayed == 0 {
		t.Fatalf("client stats: %+v, want Resumes=1 and a replayed tail", cs)
	}

	total, runErr := runStreams(t, srv, []string{"cam0"})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if total["cam0"] != batches*per {
		t.Fatalf("delivered %d events, want %d exactly once", total["cam0"], batches*per)
	}
}

// TestResumeGraceExpiry: a disconnected stream parks as resumable for the
// grace window, then faults for real with the original disconnect cause
// preserved in the error.
func TestResumeGraceExpiry(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}, ResumeGrace: 150 * time.Millisecond})
	ds, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Send(testEvents(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Flush(); err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv.Source("cam0"), "batch accepted", func(st pipeline.SourceStats) bool {
		return st.Batches == 1
	})
	ds.Abort()

	// First the session parks: disconnected but alive, no fault yet.
	st := waitStats(t, srv.Source("cam0"), "grace window", func(st pipeline.SourceStats) bool {
		return st.Resumable
	})
	if st.Faults != 0 {
		t.Fatalf("fault recorded during grace window: %+v", st)
	}
	// Then the grace expires and the stream faults with both causes.
	st = waitStats(t, srv.Source("cam0"), "grace expiry fault", func(st pipeline.SourceStats) bool {
		return st.Faults == 1
	})
	if st.Resumable {
		t.Fatalf("faulted stream still marked resumable: %+v", st)
	}
	if !strings.Contains(st.LastError, "resume grace expired") ||
		!strings.Contains(st.LastError, "disconnect without EOF frame") {
		t.Fatalf("LastError = %q, want grace expiry wrapping the disconnect cause", st.LastError)
	}
}

// TestResumeTakeover covers the half-open case: the old connection is still
// nominally open when the sensor reconnects with RESUME. The server must
// accept the newcomer, sever the stale connection, and report the negotiated
// replay point in the v2 reply.
func TestResumeTakeover(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}, AckEvery: 1})
	ds, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Abort()
	for b := 0; b < 3; b++ {
		if err := ds.Send(testEvents(10, int64(b*1000))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Flush(); err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv.Source("cam0"), "batches accepted", func(st pipeline.SourceStats) bool {
		return st.Batches == 3
	})

	// Reconnect by hand while the first connection is still open.
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hs, err := appendHandshake(nil, Hello{StreamID: "cam0", Res: events.DAVIS240, Resume: true, LastAck: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(hs); err != nil {
		t.Fatal(err)
	}
	rep, err := readHelloReply(conn, wireVersion)
	if err != nil {
		t.Fatalf("takeover handshake rejected: %v", err)
	}
	if rep.ResumeFrom != 3 {
		t.Fatalf("negotiated resume point = %d, want 3 (server's last accepted seq)", rep.ResumeFrom)
	}
	if rep.Epoch != 2 {
		t.Fatalf("epoch after takeover = %d, want 2", rep.Epoch)
	}

	// The new connection continues the stream from the negotiated point.
	wire, err := appendBatchFrame(nil, 4, testEvents(10, 4000))
	if err != nil {
		t.Fatal(err)
	}
	wire = appendEOFFrame(wire, 5)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	st := waitStats(t, srv.Source("cam0"), "clean EOF after takeover", func(st pipeline.SourceStats) bool {
		return !st.Connected && st.Events == 40
	})
	if st.Faults != 0 || st.Resumes != 1 || st.Epoch != 2 {
		t.Fatalf("takeover stats: %+v", st)
	}
}

// TestV1ClientInterop: a legacy wire-v1 client against the v2 server gets
// the old contract end to end — bare status reply, no ACK frames pushed at
// it, immediate fault on disconnect instead of a resume grace.
func TestV1ClientInterop(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0", "cam1"}, ResumeGrace: time.Hour})

	// Clean path: a v1 DialSink delivers and closes exactly as before.
	ds, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0", Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Send(testEvents(30, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	st := waitStats(t, srv.Source("cam0"), "v1 clean EOF", func(st pipeline.SourceStats) bool {
		return !st.Connected && st.Events == 30
	})
	if st.Faults != 0 {
		t.Fatalf("v1 clean send faulted: %+v", st)
	}

	// Fault path: a v1 disconnect faults immediately — the grace window is
	// a v2 privilege (a v1 client cannot resume, so parking it just delays
	// the inevitable).
	ds2, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam1", Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds2.Send(testEvents(10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ds2.Flush(); err != nil {
		t.Fatal(err)
	}
	waitStats(t, srv.Source("cam1"), "batch accepted", func(st pipeline.SourceStats) bool {
		return st.Batches == 1
	})
	ds2.Abort()
	st = waitStats(t, srv.Source("cam1"), "immediate v1 fault", func(st pipeline.SourceStats) bool {
		return st.Faults == 1
	})
	if st.Resumable {
		t.Fatalf("v1 stream parked in a grace window it can never use: %+v", st)
	}
}

// TestSecondClaimStillRejected: resume does not weaken the single-writer
// rule — a plain (non-resume) second connection to an active stream is
// still turned away as busy.
func TestSecondClaimStillRejected(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}})
	ds, err := Dial(srv.Addr().String(), DialConfig{StreamID: "cam0"})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Abort()
	if err := ds.Send(testEvents(5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Flush(); err != nil {
		t.Fatal(err)
	}
	_, err = Dial(srv.Addr().String(), DialConfig{StreamID: "cam0"})
	if !errors.Is(err, ErrRejected) || !strings.Contains(err.Error(), "already connected") {
		t.Fatalf("second claim error = %v, want busy rejection", err)
	}
}

// TestHeartbeatKeepsQuietStreamAlive is the slow-generator scenario: the
// sensor produces events far slower than the server's idle timeout. The
// sink's heartbeats must keep the connection warm so the stream survives to
// a clean EOF instead of faulting as a stalled writer.
func TestHeartbeatKeepsQuietStreamAlive(t *testing.T) {
	srv := startServer(t, ServerConfig{Streams: []string{"cam0"}, IdleTimeout: 120 * time.Millisecond})
	ds, err := Dial(srv.Addr().String(), DialConfig{
		StreamID:  "cam0",
		Heartbeat: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A generator that emits a tiny batch every ~400 ms — more than three
	// idle timeouts apart.
	for b := 0; b < 2; b++ {
		if err := ds.Send(testEvents(5, int64(b*1_000_000))); err != nil {
			t.Fatal(err)
		}
		if err := ds.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(400 * time.Millisecond)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("Close after quiet stretches: %v", err)
	}

	st := waitStats(t, srv.Source("cam0"), "clean EOF", func(st pipeline.SourceStats) bool {
		return !st.Connected && st.Events == 10
	})
	if st.Faults != 0 {
		t.Fatalf("quiet stream faulted despite heartbeats: %+v (last: %s)", st, st.LastError)
	}
	if hb := ds.Stats().Heartbeats; hb < 10 {
		t.Fatalf("heartbeats sent = %d, want a steady pulse through the quiet stretches", hb)
	}
}
