package ingest

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"ebbiot/internal/events"
)

// FuzzWireDecoder feeds arbitrary byte streams to the frame decoder and the
// handshake reader. The decoder must never panic or over-read, and every
// rejection must be one of the typed wire errors (or the io sentinels for
// clean/torn stream ends) so the server can always classify what happened.
func FuzzWireDecoder(f *testing.F) {
	evs := testEvents(32, 1000)
	batch, _ := appendBatchFrame(nil, 1, evs)
	hs, _ := appendHandshake(nil, Hello{StreamID: "cam0", Token: "tok", Res: events.DAVIS240})

	f.Add([]byte{})
	f.Add(batch)
	f.Add(batch[:len(batch)/2])               // torn frame
	f.Add(appendEOFFrame(nil, 7))             // clean EOF frame
	f.Add(append(append([]byte{}, batch...), batch...)) // two frames back to back
	f.Add(hs)
	f.Add(hs[:5])
	flip := append([]byte(nil), batch...)
	flip[frameHeaderLen+3] ^= 0x80
	f.Add(flip) // checksum failure
	huge := append([]byte(nil), batch...)
	le.PutUint32(huge, 0xFFFFFFFF)
	f.Add(huge) // absurd length field

	// Wire v2 material: ACK frames, the RESUME handshake extension, and the
	// 17-byte v2 reply.
	f.Add(appendAckFrame(nil, 42))
	ack := appendAckFrame(nil, 42)
	f.Add(ack[:len(ack)-3]) // torn ACK
	v1hs, _ := appendHandshake(nil, Hello{StreamID: "cam0", Res: events.DAVIS240, Version: 1})
	f.Add(v1hs)
	v2hs, _ := appendHandshake(nil, Hello{StreamID: "cam0", Res: events.DAVIS240, Resume: true, LastAck: 9000})
	f.Add(v2hs)
	f.Add(v2hs[:len(v2hs)-4]) // truncated resume extension
	badFlags := append([]byte(nil), v2hs...)
	badFlags[len(badFlags)-9] |= 0x80 // unknown hello flag bit
	f.Add(badFlags)
	f.Add(appendHelloReply(nil, wireVersion, helloReply{ResumeFrom: 7, Epoch: 3}))
	rej := []byte{StatusStreamBusy}
	f.Add(rej)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame decoder: drain the stream, checking every error is typed.
		dec := newDecoder(bytes.NewReader(data), events.DAVIS240)
		for i := 0; i < 1+len(data)/frameHeaderLen; i++ {
			fr, err := dec.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, io.ErrUnexpectedEOF) &&
					!errors.Is(err, ErrFrameTooBig) &&
					!errors.Is(err, ErrChecksum) &&
					!errors.Is(err, ErrBadFrame) {
					t.Fatalf("untyped decoder error: %v", err)
				}
				break
			}
			if fr.typ != frameBatch && fr.typ != frameEOF && fr.typ != frameAck {
				t.Fatalf("decoder accepted unknown frame type %d", fr.typ)
			}
			if len(fr.evs) > maxBatchEvents {
				t.Fatalf("decoder produced %d events, over the batch cap", len(fr.evs))
			}
			for j, e := range fr.evs {
				if !e.P.Valid() || e.T < 0 || !events.DAVIS240.Contains(int(e.X), int(e.Y)) {
					t.Fatalf("decoder accepted invalid event %d: %+v", j, e)
				}
			}
		}

		// Handshake reader on the same bytes: must also never panic, and
		// must not read past the handshake's own layout.
		r := bytes.NewReader(data)
		if h, err := readHandshake(r); err == nil {
			if h.StreamID == "" || len(h.StreamID) > maxStreamIDLen || len(h.Token) > maxTokenLen {
				t.Fatalf("handshake accepted out-of-spec fields: %+v", h)
			}
		} else if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadVersion) && !errors.Is(err, ErrBadHandshake) {
			t.Fatalf("untyped handshake error: %v", err)
		}

		// v2 reply reader on the same bytes: rejections must carry
		// ErrRejected, anything else is a stream-end sentinel.
		if _, err := readHelloReply(bytes.NewReader(data), wireVersion); err != nil {
			if !errors.Is(err, ErrRejected) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("untyped hello-reply error: %v", err)
			}
		}
	})
}
