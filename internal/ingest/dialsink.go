package ingest

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"ebbiot/internal/events"
)

// DialConfig parameterises a DialSink.
type DialConfig struct {
	// StreamID names this sensor stream on the server. Required.
	StreamID string
	// Token is the shared secret the server may require.
	Token string
	// Res is the sensor resolution advertised in the handshake; the server
	// rejects a mismatch against its deployment resolution.
	Res events.Resolution
	// Timeout bounds the dial, the handshake round trip and each batch
	// write; 0 means 10 seconds.
	Timeout time.Duration
	// ConnectRetries bounds additional dial attempts after the first
	// fails (0 = fail on the first error). Only the TCP connect is
	// retried — a sensor fleet brought up before its server converges
	// instead of dying — while a server that answers and rejects the
	// handshake (ErrRejected) is authoritative and never retried.
	ConnectRetries int
	// ConnectBackoff is the delay before the first retry, doubled each
	// attempt (capped at 5 s) with uniform jitter in [d/2, d] so a fleet
	// restarting together does not reconnect in lockstep. 0 means 200 ms.
	ConnectBackoff time.Duration
}

// connectBackoffCap bounds the exponential dial backoff.
const connectBackoffCap = 5 * time.Second

// jitteredBackoff returns the sleep before retry number attempt (0-based):
// base << attempt capped at connectBackoffCap, jittered uniformly into
// [d/2, d].
func jitteredBackoff(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < connectBackoffCap; i++ {
		d *= 2
	}
	if d > connectBackoffCap {
		d = connectBackoffCap
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// DialSink is the sensor-side client: it connects to an ingest server,
// performs the handshake and then streams event batches over the framed
// wire — the counterpart of NetSource, turning any local event producer
// (a recorded run, a generator, a real camera driver) into a network
// stream. It is the path that replays a recorded run over the wire.
//
// A DialSink is single-goroutine: Send and Close must not race.
type DialSink struct {
	conn net.Conn
	bw   *bufio.Writer
	seq  uint64
	buf  []byte
	// timeout bounds each Send's write.
	timeout time.Duration
	closed  bool
}

// Dial connects, handshakes and returns a ready sink. The TCP connect is
// retried up to cfg.ConnectRetries times with jittered exponential
// backoff; the handshake is attempted once on the connection that
// succeeds. A server rejection is returned as an error wrapping
// ErrRejected with the decoded reason.
func Dial(addr string, cfg DialConfig) (*DialSink, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	backoff := cfg.ConnectBackoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	var conn net.Conn
	var err error
	for attempt := 0; ; attempt++ {
		conn, err = net.DialTimeout("tcp", addr, cfg.Timeout)
		if err == nil {
			break
		}
		if attempt >= cfg.ConnectRetries {
			return nil, fmt.Errorf("ingest: dial %s (attempt %d of %d): %w",
				addr, attempt+1, cfg.ConnectRetries+1, err)
		}
		time.Sleep(jitteredBackoff(backoff, attempt))
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	hs, err := appendHandshake(nil, Hello{StreamID: cfg.StreamID, Token: cfg.Token, Res: cfg.Res})
	if err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(cfg.Timeout))
	if _, err := conn.Write(hs); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ingest: handshake write: %w", err)
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ingest: handshake reply: %w", err)
	}
	if status[0] != StatusOK {
		conn.Close()
		return nil, fmt.Errorf("%w: %s", ErrRejected, statusText(status[0]))
	}
	_ = conn.SetDeadline(time.Time{})
	return &DialSink{conn: conn, bw: bufio.NewWriterSize(conn, 64<<10), timeout: cfg.Timeout}, nil
}

// Send frames evs as the next batch. Events must be time-sorted and
// non-decreasing across Send calls — the same contract every local
// EventSource obeys. An empty batch is legal and serves as a heartbeat
// against the server's idle timeout. Batches are buffered; Flush or Close
// pushes them to the wire (a full buffer flushes on its own).
func (d *DialSink) Send(evs []events.Event) error {
	if d.closed {
		return fmt.Errorf("ingest: send on closed sink")
	}
	d.seq++
	var err error
	d.buf, err = appendBatchFrame(d.buf[:0], d.seq, evs)
	if err != nil {
		return err
	}
	_ = d.conn.SetWriteDeadline(time.Now().Add(d.timeout))
	if _, err := d.bw.Write(d.buf); err != nil {
		return fmt.Errorf("ingest: send batch %d: %w", d.seq, err)
	}
	return nil
}

// Flush pushes buffered batches to the wire.
func (d *DialSink) Flush() error {
	if d.closed {
		return nil
	}
	_ = d.conn.SetWriteDeadline(time.Now().Add(d.timeout))
	if err := d.bw.Flush(); err != nil {
		return fmt.Errorf("ingest: flush: %w", err)
	}
	return nil
}

// Close sends the clean end-of-stream frame, flushes and closes the
// connection. After Close the stream is finished on the server.
func (d *DialSink) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	d.buf = appendEOFFrame(d.buf[:0], d.seq+1)
	_ = d.conn.SetWriteDeadline(time.Now().Add(d.timeout))
	_, werr := d.bw.Write(d.buf)
	ferr := d.bw.Flush()
	cerr := d.conn.Close()
	if werr != nil {
		return fmt.Errorf("ingest: close: %w", werr)
	}
	if ferr != nil {
		return fmt.Errorf("ingest: close: %w", ferr)
	}
	return cerr
}

// Abort closes the connection without the EOF frame — from the server's
// point of view a mid-stream disconnect. Intended for fault injection and
// for senders bailing out on an error of their own.
func (d *DialSink) Abort() error {
	if d.closed {
		return nil
	}
	d.closed = true
	return d.conn.Close()
}
