package ingest

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"ebbiot/internal/events"
)

// DialConfig parameterises a DialSink.
type DialConfig struct {
	// StreamID names this sensor stream on the server. Required.
	StreamID string
	// Token is the shared secret the server may require.
	Token string
	// Res is the sensor resolution advertised in the handshake; the server
	// rejects a mismatch against its deployment resolution.
	Res events.Resolution
	// Timeout bounds the dial, the handshake round trip, each batch write
	// and Close's wait for the final acknowledgement; 0 means 10 seconds.
	Timeout time.Duration
	// ConnectRetries bounds additional dial attempts after the first
	// fails (0 = fail on the first error). Only the TCP connect is
	// retried — a sensor fleet brought up before its server converges
	// instead of dying — while a server that answers and rejects the
	// handshake (ErrRejected) is authoritative and never retried.
	ConnectRetries int
	// ConnectBackoff is the delay before the first retry, doubled each
	// attempt (capped at 5 s) with uniform jitter in [d/2, d] so a fleet
	// restarting together does not reconnect in lockstep. 0 means 200 ms.
	ConnectBackoff time.Duration
	// Version pins the advertised wire protocol version; 0 means the
	// newest this client speaks (currently 2). Version 1 is the
	// pre-resume protocol — no ACK traffic, no session resume — for
	// talking to old servers.
	Version uint32
	// ResumeRetries bounds the reconnect attempts made per connection
	// loss once the stream is live (wire v2 only). 0 means 8; negative
	// disables resume entirely, restoring fail-on-first-write-error
	// semantics.
	ResumeRetries int
	// ResumeBackoff is the base delay between reconnect attempts, doubled
	// per attempt (capped at 5 s) with the same jitter as ConnectBackoff.
	// 0 means 200 ms.
	ResumeBackoff time.Duration
	// ReplayWindow bounds the ring of sent-but-unacknowledged batches
	// kept for replay after a resume; Send blocks when the ring is full
	// until the server acknowledges progress. 0 means 256.
	ReplayWindow int
	// Heartbeat, when positive, sends an empty batch whenever the sink
	// has been quiet for about that long, so a healthy-but-idle sensor
	// outlives the server's idle timeout. Set it to at most half the
	// server's IdleTimeout.
	Heartbeat time.Duration
}

// DialStats counts one DialSink's delivery and recovery activity, printed
// by ebbiot-gen -send so operators see resume behaviour without scraping
// server metrics.
type DialStats struct {
	// Sent counts batch frames written first-hand (heartbeats included,
	// resume replays excluded).
	Sent int64 `json:"sent"`
	// Heartbeats counts the empty keep-alive batches among Sent.
	Heartbeats int64 `json:"heartbeats"`
	// Resumes counts successful RESUME handshakes after a connection
	// loss.
	Resumes int64 `json:"resumes"`
	// Replayed counts batches rewritten from the ring during resumes.
	Replayed int64 `json:"replayed"`
	// AckedSeq is the highest cumulative acknowledgement received.
	AckedSeq uint64 `json:"acked_seq"`
	// LastSeq is the highest sequence number assigned.
	LastSeq uint64 `json:"last_seq"`
	// Epoch is the current ingest session epoch (1 = first connection,
	// bumped per accepted resume; 0 on wire v1).
	Epoch uint64 `json:"epoch"`
}

// connectBackoffCap bounds the exponential dial backoff.
const connectBackoffCap = 5 * time.Second

// jitteredBackoff returns the sleep before retry number attempt (0-based):
// base << attempt capped at connectBackoffCap, jittered uniformly into
// [d/2, d].
func jitteredBackoff(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < connectBackoffCap; i++ {
		d *= 2
	}
	if d > connectBackoffCap {
		d = connectBackoffCap
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// ringEntry is one un-ACKed frame retained for replay: a batch, or the
// stream's EOF marker.
type ringEntry struct {
	seq uint64
	evs []events.Event
	eof bool
}

// DialSink is the sensor-side client: it connects to an ingest server,
// performs the handshake and then streams event batches over the framed
// wire — the counterpart of NetSource, turning any local event producer
// (a recorded run, a generator, a real camera driver) into a network
// stream.
//
// On wire v2 the sink is self-healing: it retains every batch the server
// has not yet acknowledged in a bounded ring, and a connection loss —
// noticed by a failed write or by the ACK-reader goroutine — triggers a
// RESUME reconnect that replays the ring past the server's reply point.
// The server's NetSource dedups by sequence number, so delivery stays
// exactly-once end to end. With Heartbeat set, the sink also keeps a
// quiet connection alive with empty batches.
//
// Send, Flush and Close are intended for one producing goroutine; the
// heartbeat and ACK readers are internal and synchronised.
type DialSink struct {
	cfg  DialConfig
	addr string
	// resumeRetries is the normalised per-loss retry budget; -1 means
	// resume is disabled (v1, or explicitly switched off).
	resumeRetries int

	mu   sync.Mutex
	cond *sync.Cond
	conn net.Conn
	bw   *bufio.Writer
	// gen counts installed connections; ACK-reader callbacks from an
	// already-replaced connection carry a stale gen and are ignored.
	gen int
	// connErr is the pending connection failure; the next write-path call
	// resumes (or fails, when resume is off).
	connErr  error
	seq      uint64
	ring     []ringEntry
	closed   bool
	lastSend time.Time
	stats    DialStats
	buf      []byte

	hbStop chan struct{}
	hbDone chan struct{}
}

// Dial connects, handshakes and returns a ready sink. The TCP connect is
// retried up to cfg.ConnectRetries times with jittered exponential
// backoff; the handshake is attempted once on the connection that
// succeeds. A server rejection is returned as an error wrapping
// ErrRejected with the decoded reason.
func Dial(addr string, cfg DialConfig) (*DialSink, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.ConnectBackoff <= 0 {
		cfg.ConnectBackoff = 200 * time.Millisecond
	}
	if cfg.Version == 0 {
		cfg.Version = wireVersion
	}
	if cfg.Version < wireVersionMin || cfg.Version > wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, cfg.Version)
	}
	if cfg.ResumeBackoff <= 0 {
		cfg.ResumeBackoff = 200 * time.Millisecond
	}
	if cfg.ReplayWindow <= 0 {
		cfg.ReplayWindow = 256
	}
	d := &DialSink{cfg: cfg, addr: addr, resumeRetries: cfg.ResumeRetries}
	if cfg.ResumeRetries == 0 {
		d.resumeRetries = 8
	}
	if cfg.ResumeRetries < 0 || cfg.Version < 2 {
		d.resumeRetries = -1
	}
	d.cond = sync.NewCond(&d.mu)
	var conn net.Conn
	var err error
	for attempt := 0; ; attempt++ {
		conn, err = net.DialTimeout("tcp", addr, cfg.Timeout)
		if err == nil {
			break
		}
		if attempt >= cfg.ConnectRetries {
			return nil, fmt.Errorf("ingest: dial %s (attempt %d of %d): %w",
				addr, attempt+1, cfg.ConnectRetries+1, err)
		}
		time.Sleep(jitteredBackoff(cfg.ConnectBackoff, attempt))
	}
	rep, err := d.handshake(conn, false, 0)
	if err != nil {
		conn.Close()
		return nil, err
	}
	d.mu.Lock()
	d.install(conn, rep)
	d.mu.Unlock()
	if cfg.Heartbeat > 0 {
		d.hbStop = make(chan struct{})
		d.hbDone = make(chan struct{})
		go d.heartbeatLoop()
	}
	return d, nil
}

// resumable reports whether this sink recovers from connection loss.
func (d *DialSink) resumable() bool { return d.resumeRetries >= 0 }

// handshake performs the wire handshake on a fresh connection.
func (d *DialSink) handshake(conn net.Conn, resume bool, lastAck uint64) (helloReply, error) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	hs, err := appendHandshake(nil, Hello{
		StreamID: d.cfg.StreamID,
		Token:    d.cfg.Token,
		Res:      d.cfg.Res,
		Version:  d.cfg.Version,
		Resume:   resume,
		LastAck:  lastAck,
	})
	if err != nil {
		return helloReply{}, err
	}
	_ = conn.SetDeadline(time.Now().Add(d.cfg.Timeout))
	if _, err := conn.Write(hs); err != nil {
		return helloReply{}, fmt.Errorf("ingest: handshake write: %w", err)
	}
	rep, err := readHelloReply(conn, d.cfg.Version)
	if err != nil {
		return helloReply{}, err
	}
	_ = conn.SetDeadline(time.Time{})
	return rep, nil
}

// install adopts a freshly-handshaken connection under d.mu: new writer,
// new generation, cleared failure, ACK reader started (v2).
func (d *DialSink) install(conn net.Conn, rep helloReply) {
	d.conn = conn
	d.bw = bufio.NewWriterSize(conn, 64<<10)
	d.connErr = nil
	d.gen++
	d.lastSend = time.Now()
	d.stats.Epoch = rep.Epoch
	if rep.ResumeFrom > d.stats.AckedSeq {
		d.stats.AckedSeq = rep.ResumeFrom
	}
	d.pruneRingLocked(d.stats.AckedSeq)
	if d.cfg.Version >= 2 {
		go d.ackLoop(conn, d.gen)
	}
}

// ackLoop reads the server's cumulative ACK frames off one connection,
// pruning the replay ring as sequences are confirmed. It exits on any
// read error, recording the failure so the write path resumes.
func (d *DialSink) ackLoop(conn net.Conn, gen int) {
	dec := newDecoder(bufio.NewReaderSize(conn, 4<<10), events.Resolution{})
	for {
		f, err := dec.next()
		if err != nil {
			d.noteConnErr(gen, fmt.Errorf("ingest: ack read: %w", err))
			return
		}
		if f.typ != frameAck {
			d.noteConnErr(gen, fmt.Errorf("%w: frame type %d from server", ErrBadFrame, f.typ))
			conn.Close()
			return
		}
		d.mu.Lock()
		if gen == d.gen && f.seq > d.stats.AckedSeq {
			d.stats.AckedSeq = f.seq
			d.pruneRingLocked(f.seq)
			d.cond.Broadcast()
		}
		d.mu.Unlock()
	}
}

// noteConnErr records a connection failure observed off the write path
// (ACK reader), waking anyone blocked on ring space or the final ACK.
func (d *DialSink) noteConnErr(gen int, err error) {
	d.mu.Lock()
	if gen == d.gen && !d.closed && d.connErr == nil {
		d.connErr = err
		d.cond.Broadcast()
	}
	d.mu.Unlock()
}

// pruneRingLocked drops ring entries at or below the acknowledged seq.
func (d *DialSink) pruneRingLocked(acked uint64) {
	keep := 0
	for keep < len(d.ring) && d.ring[keep].seq <= acked {
		keep++
	}
	if keep > 0 {
		n := copy(d.ring, d.ring[keep:])
		for i := n; i < len(d.ring); i++ {
			d.ring[i] = ringEntry{} // release event slices
		}
		d.ring = d.ring[:n]
	}
}

// Send frames evs as the next batch. Events must be time-sorted and
// non-decreasing across Send calls — the same contract every local
// EventSource obeys. An empty batch is legal and serves as a heartbeat
// against the server's idle timeout. Batches are buffered; Flush or Close
// pushes them to the wire (a full buffer flushes on its own). On a
// resumable sink, Send blocks while the replay ring is full and recovers
// from connection loss transparently; an error is terminal.
func (d *DialSink) Send(evs []events.Event) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sendLocked(evs, false)
}

func (d *DialSink) sendLocked(evs []events.Event, heartbeat bool) error {
	if d.closed {
		return fmt.Errorf("ingest: send on closed sink")
	}
	// Encode before committing, so a bad batch neither burns a sequence
	// number nor enters the replay ring.
	var err error
	d.buf, err = appendBatchFrame(d.buf[:0], d.seq+1, evs)
	if err != nil {
		return err
	}
	if d.resumable() {
		if len(d.ring) >= d.cfg.ReplayWindow {
			// The ring only drains when the server ACKs, and the server can
			// only ACK what it has seen: push any batches still sitting in
			// the write buffer before blocking on ring space.
			if err := d.flushLocked(); err != nil {
				return err
			}
		}
		for len(d.ring) >= d.cfg.ReplayWindow {
			if d.connErr != nil {
				if err := d.reconnectLocked(); err != nil {
					return err
				}
				continue
			}
			d.cond.Wait()
			if d.closed {
				return fmt.Errorf("ingest: send on closed sink")
			}
		}
	}
	d.seq++
	d.stats.LastSeq = d.seq
	d.stats.Sent++
	if heartbeat {
		d.stats.Heartbeats++
	}
	if d.resumable() {
		var cp []events.Event
		if len(evs) > 0 {
			cp = append(cp, evs...)
		}
		d.ring = append(d.ring, ringEntry{seq: d.seq, evs: cp})
	}
	return d.writeBufLocked(d.seq)
}

// writeBufLocked pushes the frame staged in d.buf (sequence seq, already
// in the ring when resumable) to the connection, resuming on failure.
func (d *DialSink) writeBufLocked(seq uint64) error {
	for {
		if d.connErr != nil {
			if !d.resumable() {
				return fmt.Errorf("ingest: send batch %d: %w", seq, d.connErr)
			}
			// The reconnect replays the ring, this frame included.
			return d.reconnectLocked()
		}
		_ = d.conn.SetWriteDeadline(time.Now().Add(d.cfg.Timeout))
		if _, err := d.bw.Write(d.buf); err != nil {
			d.connErr = err
			if !d.resumable() {
				return fmt.Errorf("ingest: send batch %d: %w", seq, err)
			}
			continue
		}
		d.lastSend = time.Now()
		return nil
	}
}

// Flush pushes buffered batches to the wire.
func (d *DialSink) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	return d.flushLocked()
}

func (d *DialSink) flushLocked() error {
	for {
		if d.connErr != nil {
			if !d.resumable() {
				return fmt.Errorf("ingest: flush: %w", d.connErr)
			}
			// The reconnect replays and flushes everything un-ACKed,
			// which covers whatever sat in the dead writer's buffer.
			return d.reconnectLocked()
		}
		_ = d.conn.SetWriteDeadline(time.Now().Add(d.cfg.Timeout))
		if err := d.bw.Flush(); err != nil {
			d.connErr = err
			if !d.resumable() {
				return fmt.Errorf("ingest: flush: %w", err)
			}
			continue
		}
		return nil
	}
}

// reconnectLocked re-establishes the session after a connection failure:
// dial, RESUME handshake, replay of every retained frame past the
// server's reply point. Called with d.mu held — the single-producer
// discipline makes holding it through the dial acceptable (Abort may
// block for the duration of the backoff). A server rejection is terminal;
// transport errors burn the per-loss retry budget.
func (d *DialSink) reconnectLocked() error {
	cause := d.connErr
	if d.conn != nil {
		d.conn.Close()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if d.closed {
			return fmt.Errorf("ingest: sink closed during resume")
		}
		conn, err := net.DialTimeout("tcp", d.addr, d.cfg.Timeout)
		if err != nil {
			lastErr = err
		} else if rep, herr := d.handshake(conn, true, d.stats.AckedSeq); herr != nil {
			conn.Close()
			if errors.Is(herr, ErrRejected) {
				return fmt.Errorf("ingest: resume stream %q: %w (after: %v)", d.cfg.StreamID, herr, cause)
			}
			lastErr = herr
		} else {
			d.install(conn, rep)
			if rerr := d.replayLocked(); rerr == nil {
				d.stats.Resumes++
				return nil
			} else {
				lastErr = rerr // replay write failed: connection died again
			}
		}
		if attempt >= d.resumeRetries {
			return fmt.Errorf("ingest: resume stream %q (attempt %d of %d): %v (after: %w)",
				d.cfg.StreamID, attempt+1, d.resumeRetries+1, lastErr, cause)
		}
		time.Sleep(jitteredBackoff(d.cfg.ResumeBackoff, attempt))
	}
}

// replayLocked rewrites the (already pruned) ring onto the current
// connection and flushes. A failure records connErr and returns it.
func (d *DialSink) replayLocked() error {
	buf := make([]byte, 0, 4<<10)
	for _, e := range d.ring {
		var err error
		if e.eof {
			buf = appendEOFFrame(buf[:0], e.seq)
		} else {
			buf, err = appendBatchFrame(buf[:0], e.seq, e.evs)
		}
		if err != nil {
			return err
		}
		_ = d.conn.SetWriteDeadline(time.Now().Add(d.cfg.Timeout))
		if _, err := d.bw.Write(buf); err != nil {
			d.connErr = fmt.Errorf("ingest: replay batch %d: %w", e.seq, err)
			return d.connErr
		}
		d.stats.Replayed++
	}
	_ = d.conn.SetWriteDeadline(time.Now().Add(d.cfg.Timeout))
	if err := d.bw.Flush(); err != nil {
		d.connErr = fmt.Errorf("ingest: replay flush: %w", err)
		return d.connErr
	}
	return nil
}

// heartbeatLoop keeps a quiet connection alive: whenever nothing has been
// written for about half the heartbeat interval, it sends and flushes an
// empty batch. Failures set connErr and trigger a resume on the spot, so
// an idle sensor recovers inside the server's grace window instead of
// discovering the dead connection at its next real batch.
func (d *DialSink) heartbeatLoop() {
	defer close(d.hbDone)
	tick := time.NewTicker(d.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-d.hbStop:
			return
		case <-tick.C:
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return
		}
		quiet := time.Since(d.lastSend) >= d.cfg.Heartbeat/2
		ringFull := d.resumable() && len(d.ring) >= d.cfg.ReplayWindow && d.connErr == nil
		if quiet && !ringFull {
			if err := d.sendLocked(nil, true); err == nil {
				_ = d.flushLocked()
			}
			// A failed heartbeat left connErr set (or exhausted the resume
			// budget); the producer's next Send surfaces it.
		}
		d.mu.Unlock()
	}
}

// Close sends the clean end-of-stream frame, flushes and — on wire v2 —
// waits for the server to acknowledge it, so a nil return means the
// whole stream was accepted. After Close the stream is finished on the
// server.
func (d *DialSink) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.seq++
	eofSeq := d.seq
	d.stats.LastSeq = eofSeq
	if d.resumable() {
		d.ring = append(d.ring, ringEntry{seq: eofSeq, eof: true})
	}
	d.buf = appendEOFFrame(d.buf[:0], eofSeq)
	err := d.writeBufLocked(eofSeq)
	if err == nil {
		err = d.flushLocked()
	}
	if err == nil && d.resumable() {
		err = d.awaitAckLocked(eofSeq)
	}
	d.closed = true
	conn := d.conn
	d.cond.Broadcast()
	d.mu.Unlock()
	d.stopHeartbeat()
	cerr := conn.Close()
	if err != nil {
		return fmt.Errorf("ingest: close: %w", err)
	}
	return cerr
}

// awaitAckLocked blocks until the server has acknowledged seq (the EOF),
// riding out connection losses via resume. Bounded by cfg.Timeout.
func (d *DialSink) awaitAckLocked(seq uint64) error {
	deadline := time.Now().Add(d.cfg.Timeout)
	wake := time.AfterFunc(d.cfg.Timeout, func() {
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	})
	defer wake.Stop()
	for d.stats.AckedSeq < seq {
		if time.Now().After(deadline) {
			return fmt.Errorf("ingest: EOF unacknowledged after %v", d.cfg.Timeout)
		}
		if d.connErr != nil {
			if err := d.reconnectLocked(); err != nil {
				return err
			}
			continue
		}
		d.cond.Wait()
	}
	return nil
}

// Abort closes the connection without the EOF frame — from the server's
// point of view a mid-stream disconnect (which, on wire v2, opens the
// stream's resume grace window). Intended for fault injection and for
// senders bailing out on an error of their own.
func (d *DialSink) Abort() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	conn := d.conn
	d.cond.Broadcast()
	d.mu.Unlock()
	d.stopHeartbeat()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

func (d *DialSink) stopHeartbeat() {
	if d.hbStop != nil {
		close(d.hbStop)
		<-d.hbDone
		d.hbStop = nil
	}
}

// Stats returns a snapshot of the sink's delivery and recovery counters.
func (d *DialSink) Stats() DialStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// breakConn severs the live connection without closing the sink — fault
// injection for tests: the next write or ACK read notices the loss and
// the sink resumes.
func (d *DialSink) breakConn() {
	d.mu.Lock()
	c := d.conn
	d.mu.Unlock()
	if c != nil {
		c.Close()
	}
}
