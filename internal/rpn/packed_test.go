package rpn

import (
	"math/rand"
	"reflect"
	"testing"

	"ebbiot/internal/imgproc"
)

// TestProposePackedParity holds Propose and ProposePacked to identical
// Results — proposals, histograms and runs — over random frames and a grid
// of RPN configurations, including scales that do not divide the array and
// configs with tightening and merging disabled.
func TestProposePackedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfgs := []Config{
		DefaultConfig(),
		{S1: 1, S2: 1, Threshold: 0, MergeGap: -1, MinValidPixels: 0, MinW: 0, MinH: 0},
		{S1: 7, S2: 5, Threshold: 2, MergeGap: 0, MinValidPixels: 2, MinW: 2, MinH: 2, Tighten: true},
		{S1: 12, S2: 6, Threshold: 1, MergeGap: 2, MinValidPixels: 4, MinW: 3, MinH: 3},
	}
	sizes := []struct{ w, h int }{{240, 180}, {65, 33}, {128, 64}, {31, 190}}
	for _, sz := range sizes {
		for ci, cfg := range cfgs {
			for trial := 0; trial < 8; trial++ {
				img := imgproc.NewBitmap(sz.w, sz.h)
				// A few dense patches plus noise, the RPN's operating regime.
				for p := 0; p < 3; p++ {
					px, py := rng.Intn(sz.w), rng.Intn(sz.h)
					pw, ph := rng.Intn(40)+2, rng.Intn(30)+2
					for y := py; y < py+ph && y < sz.h; y++ {
						for x := px; x < px+pw && x < sz.w; x++ {
							if rng.Float64() < 0.5 {
								img.Set(x, y)
							}
						}
					}
				}
				for i := 0; i < sz.w*sz.h/200; i++ {
					img.Set(rng.Intn(sz.w), rng.Intn(sz.h))
				}

				ref, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Propose(img)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := fast.ProposePacked(imgproc.PackBitmap(nil, img))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Proposals, want.Proposals) {
					t.Fatalf("%dx%d cfg%d trial %d: proposals %v != %v", sz.w, sz.h, ci, trial, got.Proposals, want.Proposals)
				}
				if !reflect.DeepEqual(got.HX, want.HX) || !reflect.DeepEqual(got.HY, want.HY) {
					t.Fatalf("%dx%d cfg%d trial %d: histograms mismatch", sz.w, sz.h, ci, trial)
				}
				if !reflect.DeepEqual(got.XRuns, want.XRuns) || !reflect.DeepEqual(got.YRuns, want.YRuns) {
					t.Fatalf("%dx%d cfg%d trial %d: runs mismatch", sz.w, sz.h, ci, trial)
				}
			}
		}
	}
}

// TestCCAProposePackedParity holds the CCA ablation baseline's packed path
// bit-identical to the byte path across dilation radii and minimum sizes.
func TestCCAProposePackedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	proposers := []CCAProposer{
		{},
		{DilateRadius: 1},
		{DilateRadius: 2, MinPixels: 4},
		{DilateRadius: 3, MinPixels: 10},
	}
	sizes := []struct{ w, h int }{{240, 180}, {65, 33}, {64, 64}, {31, 7}}
	for _, sz := range sizes {
		for trial := 0; trial < 6; trial++ {
			img := imgproc.NewBitmap(sz.w, sz.h)
			for i := 0; i < sz.w*sz.h/20; i++ {
				img.Set(rng.Intn(sz.w), rng.Intn(sz.h))
			}
			pimg := imgproc.PackBitmap(nil, img)
			for pi, cp := range proposers {
				want := cp.Propose(img)
				got := cp.ProposePacked(pimg)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%dx%d proposer %d trial %d: packed CCA proposals %v != %v",
						sz.w, sz.h, pi, trial, got, want)
				}
			}
		}
	}
}

// TestProposerReconfigure verifies the live-reconfiguration hook: after
// Reconfigure the proposer is indistinguishable from a freshly built one,
// and an invalid config is rejected without touching the current one.
func TestProposerReconfigure(t *testing.T) {
	img := imgproc.NewBitmap(64, 48)
	for y := 10; y < 30; y++ {
		for x := 12; x < 40; x++ {
			img.Set(x, y)
		}
	}
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Propose(img); err != nil {
		t.Fatal(err)
	}

	next := Config{S1: 4, S2: 2, Threshold: 2, MergeGap: 0, MinValidPixels: 6, MinW: 2, MinH: 2, Tighten: true}
	if err := p.Reconfigure(next); err != nil {
		t.Fatal(err)
	}
	got, err := p.Propose(img)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(next)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Propose(img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Proposals, want.Proposals) {
		t.Fatalf("reconfigured proposals %v != fresh %v", got.Proposals, want.Proposals)
	}

	if err := p.Reconfigure(Config{S1: 0, S2: 3}); err == nil {
		t.Fatal("Reconfigure accepted an invalid config")
	}
	if p.Config() != next {
		t.Fatalf("failed Reconfigure mutated the config: %+v", p.Config())
	}
}
