// Package rpn implements the event-density region-proposal network of
// Section II-B: instead of connected-component analysis on the 2-D frame
// (or a CNN detector), the filtered EBBI is block-downsampled by (s1, s2),
// projected onto X and Y histograms (Eqs. 3-4), and above-threshold runs in
// the two 1-D signals are intersected into 2-D proposal boxes.
//
// When both axes contain multiple runs, the cartesian intersection can
// propose false regions; the paper's remedy — "a check needs to be done in
// the original image to see if there are any valid pixels in that region" —
// is implemented as the validity check, which counts set pixels in the
// candidate box and discards nearly-empty ones.
//
// A connected-component-based proposer (the generalisation the paper leaves
// as future work and our ablation baseline) is provided as CCAProposer.
package rpn

import (
	"fmt"

	"ebbiot/internal/geometry"
	"ebbiot/internal/imgproc"
)

// Config parameterises the histogram RPN.
type Config struct {
	// S1, S2 are the X and Y downsampling factors; the paper uses 6 and 3.
	S1, S2 int
	// Threshold is the histogram run threshold; runs of bins strictly
	// greater than this value become 1-D regions. The paper sets 1.
	Threshold int
	// MergeGap merges 1-D runs separated by at most this many downsampled
	// bins, countering object fragmentation. 0 merges only adjacent runs;
	// negative disables merging.
	MergeGap int
	// MinValidPixels is the validity check: a proposed 2-D box must contain
	// at least this many set pixels in the (full resolution) filtered image
	// or it is discarded as a false intersection.
	MinValidPixels int
	// MinW, MinH discard degenerate proposals smaller than the smallest
	// plausible object (in full-resolution pixels).
	MinW, MinH int
	// Tighten shrinks each validated proposal to the bounding box of the
	// set pixels it actually contains. This extends the paper's validity
	// check (which already scans the candidate box in the original image)
	// to also correct the run-intersection coarseness: when X runs from
	// different lanes merge, the intersection with each lane's Y run is
	// tightened back to that lane's own object.
	Tighten bool
}

// DefaultConfig returns the paper's parameters: s1 = 6, s2 = 3,
// threshold 1, plus conservative validity settings.
func DefaultConfig() Config {
	return Config{S1: 6, S2: 3, Threshold: 1, MergeGap: 1, MinValidPixels: 4, MinW: 3, MinH: 3, Tighten: true}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.S1 <= 0 || c.S2 <= 0 {
		return fmt.Errorf("rpn: scale factors must be positive, got s1=%d s2=%d", c.S1, c.S2)
	}
	if c.Threshold < 0 {
		return fmt.Errorf("rpn: negative threshold %d", c.Threshold)
	}
	if c.MinValidPixels < 0 {
		return fmt.Errorf("rpn: negative MinValidPixels %d", c.MinValidPixels)
	}
	return nil
}

// Proposal is one candidate object region.
type Proposal struct {
	// Box is the full-resolution proposal box.
	Box geometry.Box
	// Pixels is the number of set pixels inside the box in the filtered
	// image (the event-density evidence for the proposal).
	Pixels int
}

// Result carries the proposals plus the intermediate 1-D structures, which
// the visualisation example (Fig. 3) and tests inspect.
type Result struct {
	Proposals []Proposal
	// HX, HY are the downsampled histograms of Eq. 4.
	HX, HY []int
	// XRuns, YRuns are the above-threshold runs in downsampled coordinates,
	// after gap merging.
	XRuns, YRuns []imgproc.Run
}

// Proposer computes region proposals from filtered EBBIs. It owns scratch
// buffers for the downsampled image and histograms that are reused across
// windows, so the steady-state per-window path allocates only the proposal
// list itself. A Proposer is therefore not safe for concurrent use; give
// each sensor stream its own (as each stream owns its whole System).
type Proposer struct {
	cfg    Config
	scaled *imgproc.CountImage
	hx, hy []int
}

// New returns a Proposer.
func New(cfg Config) (*Proposer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Proposer{cfg: cfg}, nil
}

// Config returns the proposer's configuration.
func (p *Proposer) Config() Config { return p.cfg }

// Reconfigure swaps the proposer's configuration in place — the
// live-reconfiguration hook behind core's ApplyParams. The scratch buffers
// are dimensioned lazily per call, so a geometry change (s1/s2) needs no
// explicit rebuild; on error the proposer is left untouched.
func (p *Proposer) Reconfigure(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	p.cfg = cfg
	return nil
}

// Propose runs the full RPN on a filtered EBBI. The returned Result's HX
// and HY histograms alias the proposer's scratch buffers and are valid only
// until the next Propose call; the Proposals themselves are freshly
// allocated and safe to retain.
func (p *Proposer) Propose(img *imgproc.Bitmap) (Result, error) {
	scaled, err := imgproc.DownsampleInto(p.scaled, img, p.cfg.S1, p.cfg.S2)
	if err != nil {
		return Result{}, fmt.Errorf("rpn: %w", err)
	}
	p.scaled = scaled
	hx, hy := imgproc.HistogramsInto(p.hx, p.hy, scaled)
	return p.propose(hx, hy,
		func(b geometry.Box) int { return countPixels(img, b) },
		func(b geometry.Box) geometry.Box { return tightenBox(img, b) },
	), nil
}

// ProposePacked runs the full RPN on a packed filtered EBBI — the
// word-parallel fast path. The downsample and both histograms collapse into
// one fused pass of block popcounts (the scaled image is never
// materialized), and the validity check and box tightening use masked
// popcounts and first/last-set-bit scans. The Result is bit-identical to
// Propose on the unpacked image and carries the same aliasing contract: HX
// and HY alias scratch buffers valid until the next call.
func (p *Proposer) ProposePacked(img *imgproc.PackedBitmap) (Result, error) {
	return p.ProposePackedRegion(img, nil)
}

// ProposePackedRegion is ProposePacked bounded by the frame's active
// region: the fused histogram pass visits only the region's dirty rows and
// words (the frame chain's sparsity summary threaded down from event
// accumulation), so the RPN never rescans dead frame area. The validity
// check and tightening are already bounded by the candidate boxes, which
// the histogram runs confine to the active area. ar must be a superset of
// img's set pixels; nil processes the full frame. The Result is
// bit-identical to ProposePacked (and to the byte-path Propose).
func (p *Proposer) ProposePackedRegion(img *imgproc.PackedBitmap, ar *imgproc.ActiveRegion) (Result, error) {
	hx, hy, err := imgproc.PackedHistogramsIntoRange(p.hx, p.hy, img, p.cfg.S1, p.cfg.S2, ar)
	if err != nil {
		return Result{}, fmt.Errorf("rpn: %w", err)
	}
	return p.propose(hx, hy,
		func(b geometry.Box) int {
			return img.CountRange(b.X, b.Y, b.MaxX(), b.MaxY())
		},
		func(b geometry.Box) geometry.Box {
			if x0, y0, x1, y1, ok := img.TightBounds(b.X, b.Y, b.MaxX(), b.MaxY()); ok {
				return geometry.BoxFromCorners(x0, y0, x1, y1)
			}
			return b
		},
	), nil
}

// propose finishes the RPN from the computed histograms: run extraction,
// gap merging, and the run intersection with validity check and optional
// tightening. count and tighten are the representation-specific image
// primitives, so the byte and packed paths share one copy of the proposal
// rules and cannot silently diverge.
func (p *Proposer) propose(hx, hy []int, count func(geometry.Box) int, tighten func(geometry.Box) geometry.Box) Result {
	p.hx, p.hy = hx, hy
	xr := imgproc.FindRuns(hx, p.cfg.Threshold)
	yr := imgproc.FindRuns(hy, p.cfg.Threshold)
	if p.cfg.MergeGap >= 0 {
		xr = imgproc.MergeRuns(xr, p.cfg.MergeGap)
		yr = imgproc.MergeRuns(yr, p.cfg.MergeGap)
	}
	res := Result{HX: hx, HY: hy, XRuns: xr, YRuns: yr}

	// Intersect every X run with every Y run; validate in the original
	// image when more than one run exists on both axes (otherwise the
	// intersection cannot be false). The validity count is also recorded as
	// the proposal's evidence either way.
	for _, rx := range xr {
		for _, ry := range yr {
			box := geometry.NewBox(
				rx.Start*p.cfg.S1, ry.Start*p.cfg.S2,
				rx.Len()*p.cfg.S1, ry.Len()*p.cfg.S2,
			)
			if box.W < p.cfg.MinW || box.H < p.cfg.MinH {
				continue
			}
			px := count(box)
			if px < p.cfg.MinValidPixels {
				continue
			}
			if p.cfg.Tighten {
				box = tighten(box)
				if box.W < p.cfg.MinW || box.H < p.cfg.MinH {
					continue
				}
			}
			res.Proposals = append(res.Proposals, Proposal{Box: box, Pixels: px})
		}
	}
	return res
}

// Boxes is a convenience returning only the proposal boxes.
func (r Result) Boxes() []geometry.Box {
	out := make([]geometry.Box, len(r.Proposals))
	for i, p := range r.Proposals {
		out[i] = p.Box
	}
	return out
}

// tightenBox returns the bounding box of the set pixels within b (b itself
// if it contains none).
func tightenBox(img *imgproc.Bitmap, b geometry.Box) geometry.Box {
	x0, y0 := b.MaxX(), b.MaxY()
	x1, y1 := b.X, b.Y
	xe, ye := min(b.MaxX(), img.W), min(b.MaxY(), img.H)
	for y := max(b.Y, 0); y < ye; y++ {
		row := y * img.W
		for x := max(b.X, 0); x < xe; x++ {
			if img.Pix[row+x] == 0 {
				continue
			}
			if x < x0 {
				x0 = x
			}
			if x >= x1 {
				x1 = x + 1
			}
			if y < y0 {
				y0 = y
			}
			if y >= y1 {
				y1 = y + 1
			}
		}
	}
	if x1 <= x0 || y1 <= y0 {
		return b
	}
	return geometry.BoxFromCorners(x0, y0, x1, y1)
}

func countPixels(img *imgproc.Bitmap, b geometry.Box) int {
	x1, y1 := b.MaxX(), b.MaxY()
	if x1 > img.W {
		x1 = img.W
	}
	if y1 > img.H {
		y1 = img.H
	}
	n := 0
	for y := b.Y; y < y1; y++ {
		if y < 0 {
			continue
		}
		row := y * img.W
		for x := b.X; x < x1; x++ {
			if x >= 0 && img.Pix[row+x] != 0 {
				n++
			}
		}
	}
	return n
}

// CCAProposer is the connected-components baseline: dilate to close gaps,
// label 8-connected components, and propose each component's bounding box.
// It is the "2-D CCA" generalisation discussed at the end of Section II-B.
type CCAProposer struct {
	// DilateRadius closes gaps up to 2*DilateRadius pixels before labelling.
	DilateRadius int
	// MinPixels discards components smaller than this.
	MinPixels int
}

// Propose labels the filtered image and returns component bounding boxes.
func (c CCAProposer) Propose(img *imgproc.Bitmap) []Proposal {
	work := img
	if c.DilateRadius > 0 {
		work = imgproc.Dilate(img, c.DilateRadius)
	}
	comps := imgproc.ConnectedComponents(work)
	return c.proposals(comps, func(b geometry.Box) int { return countPixels(img, b) })
}

// ProposePacked is Propose on a packed filtered EBBI: the dilation and the
// component labelling run word-parallel (imgproc.PackedDilate,
// PackedConnectedComponents) and the evidence counts are masked popcounts,
// so the CCA ablation baseline measures the packed path against the packed
// histogram RPN rather than paying an unpack. Output is bit-identical to
// Propose on the unpacked image.
func (c CCAProposer) ProposePacked(img *imgproc.PackedBitmap) []Proposal {
	return c.ProposePackedRegion(img, nil)
}

// ProposePackedRegion is ProposePacked bounded by the frame's active
// region: the dilation processes only the dirty row span plus its halo and
// the component labelling is seeded from the dirty words alone (clean rows
// can hold no runs). ar must be a superset of img's set pixels; nil
// processes the full frame. Output is identical to ProposePacked.
func (c CCAProposer) ProposePackedRegion(img *imgproc.PackedBitmap, ar *imgproc.ActiveRegion) []Proposal {
	work := img
	workAR := ar
	if c.DilateRadius > 0 {
		work = imgproc.PackedDilateRegion(nil, img, c.DilateRadius, ar)
		if ar != nil {
			// The dilated image's pixels reach DilateRadius beyond the
			// region, so the CCA seed region must grow the same way.
			workAR = imgproc.NewActiveRegion(img.W, img.H)
			workAR.SetDilated(ar, c.DilateRadius)
		}
	}
	comps := imgproc.PackedConnectedComponentsRegion(work, workAR)
	return c.proposals(comps, func(b geometry.Box) int {
		// Evidence is counted in the undilated image.
		return img.CountRange(b.X, b.Y, b.MaxX(), b.MaxY())
	})
}

// proposals filters labelled components into proposals; count supplies the
// representation-specific evidence count over the undilated image.
func (c CCAProposer) proposals(comps []imgproc.Component, count func(geometry.Box) int) []Proposal {
	var out []Proposal
	for _, comp := range comps {
		if comp.Size < c.MinPixels {
			continue
		}
		out = append(out, Proposal{Box: comp.Box, Pixels: count(comp.Box)})
	}
	return out
}
