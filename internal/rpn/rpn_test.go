package rpn

import (
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/imgproc"
)

// denseBox sets every pixel of the box in a DAVIS-sized bitmap.
func denseBox(img *imgproc.Bitmap, b geometry.Box) {
	for y := b.Y; y < b.MaxY(); y++ {
		for x := b.X; x < b.MaxX(); x++ {
			img.Set(x, y)
		}
	}
}

func newDAVISBitmap() *imgproc.Bitmap {
	return imgproc.NewBitmap(events.DAVIS240.A, events.DAVIS240.B)
}

func TestSingleObjectProposal(t *testing.T) {
	img := newDAVISBitmap()
	obj := geometry.NewBox(60, 72, 36, 18)
	denseBox(img, obj)
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Propose(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proposals) != 1 {
		t.Fatalf("got %d proposals, want 1: %+v", len(res.Proposals), res.Proposals)
	}
	got := res.Proposals[0].Box
	if got.IoU(obj) < 0.6 {
		t.Errorf("proposal %v poorly overlaps object %v (IoU %.2f)", got, obj, got.IoU(obj))
	}
	// Coarseness bound: the proposal can exceed the object by at most one
	// block on each side.
	if got.X < obj.X-6 || got.MaxX() > obj.MaxX()+6 || got.Y < obj.Y-3 || got.MaxY() > obj.MaxY()+3 {
		t.Errorf("proposal %v exceeds block-coarse bounds around %v", got, obj)
	}
}

func TestEmptyImageNoProposals(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Propose(newDAVISBitmap())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proposals) != 0 {
		t.Errorf("empty image proposed %d regions", len(res.Proposals))
	}
}

func TestFragmentedObjectMerged(t *testing.T) {
	// Two halves of a bus separated by a small textureless gap: the
	// downsampled histograms must merge them into one proposal (the Fig. 3
	// scenario).
	img := newDAVISBitmap()
	denseBox(img, geometry.NewBox(60, 72, 20, 20))
	denseBox(img, geometry.NewBox(86, 72, 20, 20)) // 6 px gap = 1 block
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Propose(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proposals) != 1 {
		t.Fatalf("fragmented object produced %d proposals, want 1 merged", len(res.Proposals))
	}
	b := res.Proposals[0].Box
	if b.X > 60 || b.MaxX() < 106 {
		t.Errorf("merged proposal %v does not span both fragments", b)
	}
}

func TestTwoSeparatedObjects(t *testing.T) {
	img := newDAVISBitmap()
	a := geometry.NewBox(24, 72, 30, 18)
	b := geometry.NewBox(168, 72, 30, 18)
	denseBox(img, a)
	denseBox(img, b)
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Propose(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proposals) != 2 {
		t.Fatalf("got %d proposals, want 2: %+v", len(res.Proposals), res.Proposals)
	}
}

func TestValidityCheckRejectsFalseIntersections(t *testing.T) {
	// Two objects in diagonal corners create two X runs and two Y runs:
	// four intersections, two of which are empty and must be discarded by
	// the validity check.
	img := newDAVISBitmap()
	denseBox(img, geometry.NewBox(24, 30, 30, 18))   // bottom-left
	denseBox(img, geometry.NewBox(168, 120, 30, 18)) // top-right
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Propose(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proposals) != 2 {
		t.Fatalf("validity check failed: %d proposals, want 2: %+v", len(res.Proposals), res.Proposals)
	}
	for _, pr := range res.Proposals {
		if pr.Pixels == 0 {
			t.Errorf("proposal %v has no supporting pixels", pr.Box)
		}
	}
}

func TestNoValidityCheckKeepsFalseRegions(t *testing.T) {
	// With the validity check disabled, the same diagonal scene yields all
	// four cartesian intersections — this is the failure mode the paper
	// warns about, pinned here as documentation.
	img := newDAVISBitmap()
	denseBox(img, geometry.NewBox(24, 30, 30, 18))
	denseBox(img, geometry.NewBox(168, 120, 30, 18))
	cfg := DefaultConfig()
	cfg.MinValidPixels = 0
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Propose(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proposals) != 4 {
		t.Fatalf("without validity check want 4 cartesian proposals, got %d", len(res.Proposals))
	}
}

func TestThresholdSuppressesSparseNoise(t *testing.T) {
	// Single scattered pixels produce downsampled bins of value 1, which the
	// threshold (strictly greater than 1) suppresses.
	img := newDAVISBitmap()
	img.Set(30, 30)
	img.Set(90, 120)
	img.Set(200, 60)
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Propose(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proposals) != 0 {
		t.Errorf("sparse noise proposed %d regions", len(res.Proposals))
	}
}

func TestMinSizeFilter(t *testing.T) {
	img := newDAVISBitmap()
	denseBox(img, geometry.NewBox(60, 72, 36, 18))
	cfg := DefaultConfig()
	cfg.MinW = 300 // absurd: no proposal can satisfy it
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Propose(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proposals) != 0 {
		t.Error("MinW filter not applied")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{S1: 0, S2: 3},
		{S1: 6, S2: -1},
		{S1: 6, S2: 3, Threshold: -1},
		{S1: 6, S2: 3, MinValidPixels: -5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail validation: %+v", i, cfg)
		}
	}
}

func TestResultBoxes(t *testing.T) {
	r := Result{Proposals: []Proposal{
		{Box: geometry.NewBox(0, 0, 5, 5)},
		{Box: geometry.NewBox(10, 10, 5, 5)},
	}}
	boxes := r.Boxes()
	if len(boxes) != 2 || boxes[1] != geometry.NewBox(10, 10, 5, 5) {
		t.Errorf("Boxes = %v", boxes)
	}
}

func TestHistogramsExposed(t *testing.T) {
	img := newDAVISBitmap()
	denseBox(img, geometry.NewBox(60, 72, 36, 18))
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Propose(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HX) != 240/6 || len(res.HY) != 180/3 {
		t.Errorf("histogram lengths %d, %d", len(res.HX), len(res.HY))
	}
	sum := 0
	for _, v := range res.HX {
		sum += v
	}
	if sum != 36*18 {
		t.Errorf("HX total %d, want %d", sum, 36*18)
	}
	if len(res.XRuns) != 1 || len(res.YRuns) != 1 {
		t.Errorf("runs: %v / %v", res.XRuns, res.YRuns)
	}
}

func TestCCAProposer(t *testing.T) {
	img := newDAVISBitmap()
	a := geometry.NewBox(24, 72, 30, 18)
	b := geometry.NewBox(168, 100, 30, 18)
	denseBox(img, a)
	denseBox(img, b)
	props := CCAProposer{DilateRadius: 1, MinPixels: 8}.Propose(img)
	if len(props) != 2 {
		t.Fatalf("CCA proposed %d regions, want 2", len(props))
	}
	// Dilation grows boxes by up to the radius on each side.
	if props[0].Box.IoU(a) < 0.5 && props[0].Box.IoU(b) < 0.5 {
		t.Errorf("CCA box %v matches neither object", props[0].Box)
	}
}

func TestCCAProposerMinPixels(t *testing.T) {
	img := newDAVISBitmap()
	img.Set(10, 10) // lone noise pixel
	denseBox(img, geometry.NewBox(60, 60, 20, 10))
	props := CCAProposer{MinPixels: 8}.Propose(img)
	if len(props) != 1 {
		t.Fatalf("CCA kept %d regions, want 1 (noise dropped)", len(props))
	}
}

func TestCCAFragmentsWithoutDilation(t *testing.T) {
	// The same fragmented object that the histogram RPN merges splits into
	// two components under plain CCA — the contrast the ablation measures.
	img := newDAVISBitmap()
	denseBox(img, geometry.NewBox(60, 72, 20, 20))
	denseBox(img, geometry.NewBox(86, 72, 20, 20))
	props := CCAProposer{MinPixels: 4}.Propose(img)
	if len(props) != 2 {
		t.Fatalf("undilated CCA should fragment: got %d proposals", len(props))
	}
}

func BenchmarkProposeDAVIS(b *testing.B) {
	img := newDAVISBitmap()
	denseBox(img, geometry.NewBox(60, 72, 36, 18))
	denseBox(img, geometry.NewBox(150, 40, 60, 26))
	p, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Propose(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCAProposeDAVIS(b *testing.B) {
	img := newDAVISBitmap()
	denseBox(img, geometry.NewBox(60, 72, 36, 18))
	denseBox(img, geometry.NewBox(150, 40, 60, 26))
	p := CCAProposer{DilateRadius: 1, MinPixels: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Propose(img)
	}
}
