package assign

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGreedySimple(t *testing.T) {
	cost := [][]float64{
		{1, 5},
		{2, 1},
	}
	got, err := Greedy(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy takes (0,0)=1 first, then (1,1)=1.
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("greedy = %v", got)
	}
}

func TestGreedySuboptimalCase(t *testing.T) {
	// The classic trap: greedy grabs the global minimum and pays for it.
	cost := [][]float64{
		{1, 2},
		{2, 100},
	}
	g, err := Greedy(cost)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := TotalCost(cost, g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := TotalCost(cost, h)
	if err != nil {
		t.Fatal(err)
	}
	if gc != 101 {
		t.Errorf("greedy cost = %v, want 101", gc)
	}
	if hc != 4 {
		t.Errorf("hungarian cost = %v, want 4 (assign anti-diagonal)", hc)
	}
}

func TestHungarianKnown3x3(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	got, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	c, err := TotalCost(cost, got)
	if err != nil {
		t.Fatal(err)
	}
	if c != 5 { // 1 + 2 + 2
		t.Errorf("optimal cost = %v (assignment %v), want 5", c, got)
	}
}

func TestHungarianRectangular(t *testing.T) {
	// More rows than columns: one row stays unassigned.
	cost := [][]float64{
		{1},
		{2},
		{3},
	}
	got, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	assigned := 0
	for r, c := range got {
		if c == 0 {
			assigned++
			if r != 0 {
				t.Errorf("cheapest row should win the only column, got row %d", r)
			}
		}
	}
	if assigned != 1 {
		t.Errorf("%d rows assigned to 1 column", assigned)
	}
	// More columns than rows.
	cost2 := [][]float64{{3, 1, 2}}
	got2, err := Hungarian(cost2)
	if err != nil {
		t.Fatal(err)
	}
	if got2[0] != 1 {
		t.Errorf("row should take cheapest column 1, got %d", got2[0])
	}
}

func TestForbiddenPairs(t *testing.T) {
	cost := [][]float64{
		{Inf, 1},
		{1, Inf},
	}
	got, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("assignment must avoid forbidden diagonal: %v", got)
	}
	allForbidden := [][]float64{{Inf}}
	got2, err := Hungarian(allForbidden)
	if err != nil {
		t.Fatal(err)
	}
	if got2[0] != -1 {
		t.Errorf("fully forbidden row must stay unassigned, got %d", got2[0])
	}
}

func TestEmptyAndRagged(t *testing.T) {
	if got, err := Hungarian(nil); err != nil || len(got) != 0 {
		t.Errorf("empty matrix: %v, %v", got, err)
	}
	if got, err := Greedy(nil); err != nil || len(got) != 0 {
		t.Errorf("empty greedy: %v, %v", got, err)
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := Hungarian(ragged); err == nil {
		t.Error("ragged matrix should error")
	}
	if _, err := Greedy(ragged); err == nil {
		t.Error("ragged matrix should error")
	}
}

func TestTotalCostErrors(t *testing.T) {
	cost := [][]float64{{Inf, 1}}
	if _, err := TotalCost(cost, []int{0}); err == nil {
		t.Error("forbidden assignment should error")
	}
	if _, err := TotalCost(cost, []int{5}); err == nil {
		t.Error("out-of-range assignment should error")
	}
	if c, err := TotalCost(cost, []int{-1}); err != nil || c != 0 {
		t.Errorf("unassigned row: %v, %v", c, err)
	}
}

// bruteForceBest finds the optimal assignment cost by enumeration (n <= 4).
func bruteForceBest(cost [][]float64) float64 {
	n := len(cost)
	cols := len(cost[0])
	best := math.Inf(1)
	perm := make([]int, 0, n)
	used := make([]bool, cols)
	var rec func(r int, sofar float64, assigned int)
	rec = func(r int, sofar float64, assigned int) {
		if r == n {
			// Count only full assignments of min(n, cols) pairs.
			if assigned == min(n, cols) && sofar < best {
				best = sofar
			}
			return
		}
		// Skip this row.
		rec(r+1, sofar, assigned)
		for c := 0; c < cols; c++ {
			if used[c] || math.IsInf(cost[r][c], 1) {
				continue
			}
			used[c] = true
			perm = append(perm, c)
			rec(r+1, sofar+cost[r][c], assigned+1)
			perm = perm[:len(perm)-1]
			used[c] = false
		}
	}
	rec(0, 0, 0)
	return best
}

func TestHungarianMatchesBruteForceProperty(t *testing.T) {
	prop := func(vals [16]uint8, rows8, cols8 uint8) bool {
		rows := 1 + int(rows8%4)
		cols := 1 + int(cols8%4)
		cost := make([][]float64, rows)
		k := 0
		for r := 0; r < rows; r++ {
			cost[r] = make([]float64, cols)
			for c := 0; c < cols; c++ {
				cost[r][c] = float64(vals[k%16] % 50)
				k++
			}
		}
		got, err := Hungarian(cost)
		if err != nil {
			return false
		}
		gc, err := TotalCost(cost, got)
		if err != nil {
			return false
		}
		// All-finite matrices must fully assign min(rows, cols) pairs.
		assigned := 0
		for _, c := range got {
			if c >= 0 {
				assigned++
			}
		}
		if assigned != min(rows, cols) {
			return false
		}
		want := bruteForceBest(cost)
		return math.Abs(gc-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGreedyNeverBeatsHungarianProperty(t *testing.T) {
	prop := func(vals [9]uint8) bool {
		cost := make([][]float64, 3)
		k := 0
		for r := 0; r < 3; r++ {
			cost[r] = make([]float64, 3)
			for c := 0; c < 3; c++ {
				cost[r][c] = float64(vals[k] % 30)
				k++
			}
		}
		g, err := Greedy(cost)
		if err != nil {
			return false
		}
		h, err := Hungarian(cost)
		if err != nil {
			return false
		}
		gc, err := TotalCost(cost, g)
		if err != nil {
			return false
		}
		hc, err := TotalCost(cost, h)
		if err != nil {
			return false
		}
		return hc <= gc+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
