// Package assign implements assignment solvers for track-to-measurement
// data association. The Kalman baseline defaults to greedy nearest-first
// association (cheap, and what an embedded implementation would ship); the
// Hungarian solver here provides the cost-optimal reference so the impact
// of greedy association can be measured.
package assign

import (
	"fmt"
	"math"
)

// Inf marks a forbidden pairing in a cost matrix (for example, a
// track/measurement pair outside the association gate).
var Inf = math.Inf(1)

// Greedy assigns rows to columns by ascending cost: repeatedly take the
// cheapest unassigned (row, col) pair with finite cost. Returns rowTo,
// where rowTo[r] is the column assigned to row r or -1. The cost matrix is
// indexed cost[r][c]; all rows must share one width.
func Greedy(cost [][]float64) ([]int, error) {
	rows, cols, err := dims(cost)
	if err != nil {
		return nil, err
	}
	rowTo := make([]int, rows)
	for i := range rowTo {
		rowTo[i] = -1
	}
	colUsed := make([]bool, cols)
	for {
		bestR, bestC := -1, -1
		best := Inf
		for r := 0; r < rows; r++ {
			if rowTo[r] >= 0 {
				continue
			}
			for c := 0; c < cols; c++ {
				if colUsed[c] {
					continue
				}
				if v := cost[r][c]; v < best {
					best = v
					bestR, bestC = r, c
				}
			}
		}
		if bestR < 0 {
			return rowTo, nil
		}
		rowTo[bestR] = bestC
		colUsed[bestC] = true
	}
}

// Hungarian returns the minimum-total-cost assignment of rows to columns
// (each row to at most one column and vice versa), leaving a row
// unassigned (-1) only when every remaining column is forbidden for it.
// The implementation is the O(n^3) shortest-augmenting-path formulation
// with row/column potentials, padded to a square matrix internally.
func Hungarian(cost [][]float64) ([]int, error) {
	rows, cols, err := dims(cost)
	if err != nil {
		return nil, err
	}
	n := rows
	if cols > n {
		n = cols
	}
	// Pad to square with a large-but-finite cost so padding never beats a
	// real finite pairing but keeps the algebra finite. Forbidden entries
	// stay +Inf and are skipped by the scan.
	const pad = 1e15
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			switch {
			case i < rows && j < cols:
				a[i][j] = cost[i][j]
			default:
				a[i][j] = pad
			}
		}
	}

	// Potentials and matching, 1-indexed per the classical formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = Inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := Inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := a[i0-1][j-1]
				if math.IsInf(cur, 1) {
					cur = pad * 2 // forbidden: strictly worse than any pad
				}
				cur -= u[i0] + v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowTo := make([]int, rows)
	for i := range rowTo {
		rowTo[i] = -1
	}
	for j := 1; j <= n; j++ {
		i := p[j]
		if i == 0 || i > rows || j > cols {
			continue
		}
		// Drop assignments that landed on forbidden pairs.
		if math.IsInf(cost[i-1][j-1], 1) {
			continue
		}
		rowTo[i-1] = j - 1
	}
	return rowTo, nil
}

// TotalCost sums the cost of an assignment, ignoring unassigned rows. It
// returns an error if an assignment refers to a forbidden pair.
func TotalCost(cost [][]float64, rowTo []int) (float64, error) {
	total := 0.0
	for r, c := range rowTo {
		if c < 0 {
			continue
		}
		if r >= len(cost) || c >= len(cost[r]) {
			return 0, fmt.Errorf("assign: assignment (%d,%d) out of range", r, c)
		}
		v := cost[r][c]
		if math.IsInf(v, 1) {
			return 0, fmt.Errorf("assign: assignment (%d,%d) uses forbidden pair", r, c)
		}
		total += v
	}
	return total, nil
}

func dims(cost [][]float64) (rows, cols int, err error) {
	rows = len(cost)
	if rows == 0 {
		return 0, 0, nil
	}
	cols = len(cost[0])
	for i, row := range cost {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("assign: ragged cost matrix at row %d", i)
		}
	}
	return rows, cols, nil
}
