package core_test

import (
	"fmt"
	"sync"
	"testing"

	"ebbiot/internal/core"
	"ebbiot/internal/dataset"
	"ebbiot/internal/events"
)

// engBench lazily generates a 2-second ENG traffic replica sliced into
// 66 ms windows, shared by every benchmark in the package.
var engBench struct {
	once sync.Once
	wins [][]events.Event
}

func engWindows(b *testing.B) [][]events.Event {
	b.Helper()
	engBench.once.Do(func() {
		spec, err := dataset.For(dataset.ENG, 2.0/2998.4, 42)
		if err != nil {
			panic(err)
		}
		rec, err := dataset.Generate(spec)
		if err != nil {
			panic(err)
		}
		for cursor := int64(0); cursor+66_000 <= rec.Scene.DurationUS; cursor += 66_000 {
			evs, err := rec.Sim.Events(cursor, cursor+66_000)
			if err != nil {
				panic(err)
			}
			engBench.wins = append(engBench.wins, evs)
		}
	})
	return engBench.wins
}

// BenchmarkProcessWindowENG is the end-to-end fused window path over the
// ENG replica: one op processes one window, cycling through the recording,
// with the near-empty fast path at its lossless default. This is the
// ProcessWindow number the CI bench-compare gate watches.
func BenchmarkProcessWindowENG(b *testing.B) {
	wins := engWindows(b)
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ProcessWindow(wins[i%len(wins)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessWindowBatchENG sweeps the batch size at constant per-op
// work: one op pushes the whole replica through ProcessWindowBatch in
// batch-sized groups, so ns/op is directly comparable across batch sizes
// and against len(wins) x BenchmarkProcessWindowENG.
func BenchmarkProcessWindowBatchENG(b *testing.B) {
	wins := engWindows(b)
	for _, batch := range []int{1, 4, 16} {
		batch := batch
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			sys, err := core.NewEBBIOT(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < len(wins); j += batch {
					end := j + batch
					if end > len(wins) {
						end = len(wins)
					}
					if _, err := sys.ProcessWindowBatch(wins[j:end]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
