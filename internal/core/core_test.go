package core

import (
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

// runScene streams a scene through a system and returns the boxes of the
// last frame plus a count of frames in which at least one box was reported.
func runScene(t *testing.T, sys System, sc *scene.Scene, noiseHz float64, seed uint64) (last []geometry.Box, reported int) {
	t.Helper()
	cfg := sensor.DefaultConfig(seed)
	cfg.NoiseRatePerPixelHz = noiseHz
	sim, err := sensor.New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	for cursor := int64(0); cursor+66_000 <= sc.DurationUS; cursor += 66_000 {
		evs, err := sim.Events(cursor, cursor+66_000)
		if err != nil {
			t.Fatal(err)
		}
		boxes, err := sys.ProcessWindow(evs)
		if err != nil {
			t.Fatal(err)
		}
		if len(boxes) > 0 {
			reported++
			last = boxes
		}
	}
	return last, reported
}

func TestEBBIOTTracksSingleObject(t *testing.T) {
	sys, err := NewEBBIOT(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := scene.SingleObjectScene(events.DAVIS240, 3_000_000)
	last, reported := runScene(t, sys, sc, 1.0, 42)
	if reported < 30 {
		t.Fatalf("EBBIOT reported in only %d frames", reported)
	}
	gt := sc.GroundTruth(2_970_000, 4)
	if len(gt) != 1 || len(last) != 1 {
		t.Fatalf("gt=%d last=%d", len(gt), len(last))
	}
	if iou := last[0].IoU(gt[0].Box); iou < 0.4 {
		t.Errorf("final IoU = %.2f (track %v vs gt %v)", iou, last[0], gt[0].Box)
	}
}

func TestEBBIOTName(t *testing.T) {
	sys, err := NewEBBIOT(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "EBBIOT" {
		t.Error("name wrong")
	}
}

func TestEBBIOTExposesInternals(t *testing.T) {
	sys, err := NewEBBIOT(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := scene.SingleObjectScene(events.DAVIS240, 1_000_000)
	runScene(t, sys, sc, 0, 7)
	if sys.LastFrame() == nil {
		t.Error("LastFrame not retained")
	}
	if sys.Tracker() == nil {
		t.Error("Tracker not exposed")
	}
	if len(sys.LastRPN().HX) == 0 {
		t.Error("LastRPN not retained")
	}
}

func TestEBBIKFTracksSingleObject(t *testing.T) {
	sys, err := NewEBBIKF(DefaultKFConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "EBBI+KF" {
		t.Error("name wrong")
	}
	sc := scene.SingleObjectScene(events.DAVIS240, 3_000_000)
	last, reported := runScene(t, sys, sc, 1.0, 43)
	if reported < 30 {
		t.Fatalf("EBBI+KF reported in only %d frames", reported)
	}
	gt := sc.GroundTruth(2_970_000, 4)
	if len(last) != 1 {
		t.Fatalf("last frame boxes = %d", len(last))
	}
	if iou := last[0].IoU(gt[0].Box); iou < 0.3 {
		t.Errorf("final IoU = %.2f", iou)
	}
}

func TestEBMSTracksSingleObject(t *testing.T) {
	sys, err := NewEBMS(DefaultEBMSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "EBMS" {
		t.Error("name wrong")
	}
	sc := scene.SingleObjectScene(events.DAVIS240, 3_000_000)
	last, reported := runScene(t, sys, sc, 1.0, 44)
	if reported < 20 {
		t.Fatalf("EBMS reported in only %d frames", reported)
	}
	gt := sc.GroundTruth(2_970_000, 4)
	if len(last) == 0 {
		t.Fatal("no EBMS boxes in final frame")
	}
	// EBMS cluster extent is scatter-derived, so use center distance
	// rather than IoU. Residual noise may sustain extra clusters, so score
	// the best-matching box.
	gx, gy := gt[0].Box.Center()
	bestD2 := 1e18
	for _, b := range last {
		cx, cy := b.Center()
		dx, dy := cx-gx, cy-gy
		if d2 := dx*dx + dy*dy; d2 < bestD2 {
			bestD2 = d2
		}
	}
	if bestD2 > 30*30 {
		t.Errorf("no EBMS cluster within 30 px of gt (%v,%v): %v", gx, gy, last)
	}
	if sys.MeanNF() <= 0 {
		t.Error("MeanNF not measured")
	}
	if sys.Clusters() == nil {
		t.Error("Clusters not exposed")
	}
}

func TestEBBIOTTwoObjects(t *testing.T) {
	sys, err := NewEBBIOT(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := &scene.Scene{
		Res: events.DAVIS240, DurationUS: 3_000_000,
		Objects: []scene.Object{
			{ID: 0, Kind: scene.KindCar, W: 30, H: 16, LaneY: 40, X0: -30, VX: 60, EnterUS: 0, ExitUS: 3_000_000, Z: 1, EdgeDensity: 0.9, InteriorDensity: 0.2},
			{ID: 1, Kind: scene.KindVan, W: 40, H: 22, LaneY: 110, X0: 240, VX: -55, EnterUS: 0, ExitUS: 3_000_000, Z: 2, EdgeDensity: 0.9, InteriorDensity: 0.12},
		},
	}
	last, _ := runScene(t, sys, sc, 1.0, 45)
	if len(last) != 2 {
		t.Fatalf("want 2 tracks in final frame, got %d", len(last))
	}
}

func TestConfigErrorsPropagate(t *testing.T) {
	bad := DefaultConfig()
	bad.RPN.S1 = 0
	if _, err := NewEBBIOT(bad); err == nil {
		t.Error("bad RPN config should fail")
	}
	bad2 := DefaultConfig()
	bad2.Tracker.MaxTrackers = 0
	if _, err := NewEBBIOT(bad2); err == nil {
		t.Error("bad tracker config should fail")
	}
	badKF := DefaultKFConfig()
	badKF.Tracker.GateDistance = -1
	if _, err := NewEBBIKF(badKF); err == nil {
		t.Error("bad KF config should fail")
	}
	badMS := DefaultEBMSConfig()
	badMS.NNP = 2
	if _, err := NewEBMS(badMS); err == nil {
		t.Error("bad NN config should fail")
	}
}

func TestWithROE(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Tracker.ROE != nil {
		t.Fatal("default should have no ROE")
	}
	// A nil-safe smoke test of the builder path with an ROE installed.
	sys, err := NewEBBIOT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = sys
}
