package core

import (
	"reflect"
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

// sceneEvents renders a deterministic 2-object scene into one sorted event
// slice for the differential tests.
func sceneEvents(t *testing.T, durationUS int64) []events.Event {
	t.Helper()
	sc := &scene.Scene{
		Res:        events.DAVIS240,
		DurationUS: durationUS,
		Objects: []scene.Object{
			{ID: 0, Kind: scene.KindCar, W: 30, H: 16, LaneY: 40, X0: -30, VX: 60, EnterUS: 0, ExitUS: durationUS, Z: 1, EdgeDensity: 0.9, InteriorDensity: 0.2},
			{ID: 1, Kind: scene.KindVan, W: 40, H: 22, LaneY: 110, X0: 240, VX: -55, EnterUS: 0, ExitUS: durationUS, Z: 2, EdgeDensity: 0.9, InteriorDensity: 0.12},
		},
	}
	cfg := sensor.DefaultConfig(99)
	cfg.NoiseRatePerPixelHz = 2
	sim, err := sensor.New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := sim.Events(0, durationUS)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// rebase shifts timestamps so the slice starts at t=0, the clock a fresh
// run launched at a window boundary would see. EBBI accumulation is
// timestamp-free, so rebasing changes nothing but the frame clock.
func rebase(evs []events.Event, originUS int64) []events.Event {
	out := make([]events.Event, len(evs))
	for i, e := range evs {
		out[i] = e
		out[i].T -= originUS
	}
	return out
}

// feed runs sys over the windows and returns the per-window boxes.
func feed(t *testing.T, sys System, ws []events.Window) [][]geometry.Box {
	t.Helper()
	out := make([][]geometry.Box, 0, len(ws))
	for _, w := range ws {
		boxes, err := sys.ProcessWindow(w.Events)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, boxes)
	}
	return out
}

// boxesEqual compares per-window box slices, treating nil and empty alike.
func boxesEqual(a, b [][]geometry.Box) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) == 0 && len(b[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestApplyParamsEquivalentToFreshRun is the control plane's core
// guarantee: applying new parameters mid-run at a window boundary yields
// bit-identical tracks to a brand-new system launched with those parameters
// at the same boundary — across RPN retunes, a tF change, a median/geometry
// change and a representation flip.
func TestApplyParamsEquivalentToFreshRun(t *testing.T) {
	const tF1 = 66_000
	evs := sceneEvents(t, 4_000_000)

	base := DefaultConfig()
	cases := []struct {
		name string
		next Config
	}{
		{"rpn-retune", func() Config {
			c := base
			c.RPN.Threshold = 2
			c.RPN.MinValidPixels = 8
			c.Tracker.MatchFraction = 0.4
			return c
		}()},
		{"tf-change", func() Config {
			c := base
			c.EBBI.FrameUS = 33_000
			return c
		}()},
		{"geometry-change", func() Config {
			c := base
			c.EBBI.MedianP = 5
			c.RPN.S1, c.RPN.S2 = 8, 4
			return c
		}()},
		{"representation-flip", func() Config {
			c := base
			c.Reference = true
			c.RPN.Threshold = 2
			return c
		}()},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const boundary = 20 // windows of tF1 before the change
			originUS := int64(boundary) * tF1

			prefixEvs := make([]events.Event, 0, len(evs))
			var suffixEvs []events.Event
			for i, e := range evs {
				if e.T >= originUS {
					suffixEvs = evs[i:]
					break
				}
				prefixEvs = append(prefixEvs, e)
			}
			prefix, err := events.Windows(prefixEvs, tF1)
			if err != nil {
				t.Fatal(err)
			}
			// The post-change windows both runs consume: remaining events
			// re-windowed at the (possibly new) tF from the boundary.
			suffix, err := events.Windows(rebase(suffixEvs, originUS), tc.next.EBBI.FrameUS)
			if err != nil {
				t.Fatal(err)
			}

			live, err := NewEBBIOT(base)
			if err != nil {
				t.Fatal(err)
			}
			defer live.Close()
			feed(t, live, prefix)
			if err := live.ApplyParams(tc.next); err != nil {
				t.Fatal(err)
			}
			got := feed(t, live, suffix)

			fresh, err := NewEBBIOT(tc.next)
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()
			want := feed(t, fresh, suffix)

			if !boxesEqual(got, want) {
				t.Fatalf("mid-run ApplyParams diverged from fresh run:\ngot  %v\nwant %v", got, want)
			}
		})
	}
}

// TestApplyParamsEquivalentToFreshRunKF mirrors the differential guarantee
// for the EBBI+KF comparison pipeline.
func TestApplyParamsEquivalentToFreshRunKF(t *testing.T) {
	const tF = 66_000
	evs := sceneEvents(t, 3_000_000)
	ws, err := events.Windows(evs, tF)
	if err != nil {
		t.Fatal(err)
	}
	const boundary = 15
	if len(ws) <= boundary {
		t.Fatalf("scene too short: %d windows", len(ws))
	}

	base := DefaultKFConfig()
	next := base
	next.RPN.Threshold = 2
	next.Tracker.GateDistance = 25

	live, err := NewEBBIKF(base)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	feed(t, live, ws[:boundary])
	if err := live.ApplyParams(next); err != nil {
		t.Fatal(err)
	}
	got := feed(t, live, ws[boundary:])

	fresh, err := NewEBBIKF(next)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want := feed(t, fresh, ws[boundary:])

	if !boxesEqual(got, want) {
		t.Fatalf("mid-run ApplyParams (KF) diverged from fresh run:\ngot  %v\nwant %v", got, want)
	}
}

// TestApplyParamsRejectsInvalid verifies an invalid parameter set is
// rejected whole: the system keeps its old configuration and keeps
// processing windows.
func TestApplyParamsRejectsInvalid(t *testing.T) {
	sys, err := NewEBBIOT(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	evs := sceneEvents(t, 200_000)
	ws, err := events.Windows(evs, 66_000)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, sys, ws[:1])

	bad := DefaultConfig()
	bad.EBBI.MedianP = 4 // even: invalid
	if err := sys.ApplyParams(bad); err == nil {
		t.Fatal("ApplyParams accepted an even median patch size")
	}
	bad = DefaultConfig()
	bad.RPN.S1 = 0
	if err := sys.ApplyParams(bad); err == nil {
		t.Fatal("ApplyParams accepted a zero RPN scale")
	}
	bad = DefaultConfig()
	bad.Tracker.MaxTrackers = 0
	if err := sys.ApplyParams(bad); err == nil {
		t.Fatal("ApplyParams accepted a zero tracker pool")
	}
	if got := sys.Config(); !reflect.DeepEqual(got, DefaultConfig()) {
		t.Fatalf("failed ApplyParams mutated the config: %+v", got)
	}
	// Still processes windows with the old parameters.
	feed(t, sys, ws[1:])
}
