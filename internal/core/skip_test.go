package core

import (
	"reflect"
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
)

// skipWindows synthesizes a deterministic window sequence alternating busy
// frames (a dense blob that survives the median and tracks) with near-empty
// frames of count stray events scattered far apart (so they never form a
// median-surviving patch on their own).
func skipWindows(frameUS int64, n, stray int) [][]events.Event {
	out := make([][]events.Event, 0, n)
	for w := 0; w < n; w++ {
		t0 := int64(w) * frameUS
		var evs []events.Event
		if w%2 == 0 {
			// 20x16 solid blob: hundreds of events, clear proposal.
			for y := 60; y < 76; y++ {
				for x := 100; x < 120; x++ {
					evs = append(evs, events.Event{X: int16(x), Y: int16(y), T: t0})
				}
			}
		} else {
			for i := 0; i < stray; i++ {
				evs = append(evs, events.Event{X: int16(5 + 40*i), Y: int16(10 + 30*i), T: t0})
			}
		}
		out = append(out, evs)
	}
	return out
}

func runWindows(t *testing.T, sys System, wins [][]events.Event) [][]geometry.Box {
	t.Helper()
	var out [][]geometry.Box
	for _, evs := range wins {
		boxes, err := sys.ProcessWindow(evs)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, boxes)
	}
	return out
}

// TestSkipLosslessIdentical verifies the fast path's core guarantee: at the
// lossless threshold, enabling window skipping changes nothing about the
// reported tracks while actually skipping the near-empty windows.
func TestSkipLosslessIdentical(t *testing.T) {
	for _, reference := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Reference = reference
		cfg.SkipEventsBelow = LosslessSkipThreshold(cfg.EBBI.MedianP)
		skipSys, err := NewEBBIOT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer skipSys.Close()
		cfg2 := cfg
		cfg2.SkipEventsBelow = 0
		plainSys, err := NewEBBIOT(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		defer plainSys.Close()

		wins := skipWindows(cfg.EBBI.FrameUS, 12, 4) // 4 strays < threshold 5
		got := runWindows(t, skipSys, wins)
		want := runWindows(t, plainSys, wins)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("reference=%v: skip-enabled boxes diverge: got %v want %v", reference, got, want)
		}
		st := skipSys.StageTimings()
		if st.Skipped != 6 {
			t.Errorf("reference=%v: skipped = %d, want 6", reference, st.Skipped)
		}
		if st.Windows != 12 {
			t.Errorf("reference=%v: windows = %d, want 12", reference, st.Windows)
		}
		if plain := plainSys.StageTimings(); plain.Skipped != 0 {
			t.Errorf("reference=%v: plain system skipped %d windows", reference, plain.Skipped)
		}
		if len(got[len(got)-1]) == 0 {
			t.Errorf("reference=%v: expected a live track at the end", reference)
		}
	}
}

// TestSkipLossyPathsAgree verifies the differential contract at a lossy
// threshold: packed and byte paths must still report identical tracks,
// because the skip decision reads the same in-array count on both.
func TestSkipLossyPathsAgree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipEventsBelow = 50 // above the lossless bound, drops faint windows
	fast, err := NewEBBIOT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	cfg.Reference = true
	ref, err := NewEBBIOT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	wins := skipWindows(cfg.EBBI.FrameUS, 12, 30) // 30 strays: skipped only at 50
	got := runWindows(t, fast, wins)
	want := runWindows(t, ref, wins)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("packed and reference diverge under lossy skip: got %v want %v", got, want)
	}
	if fast.StageTimings().Skipped != ref.StageTimings().Skipped {
		t.Errorf("skip counts diverge: packed %d reference %d",
			fast.StageTimings().Skipped, ref.StageTimings().Skipped)
	}
	if fast.StageTimings().Skipped != 6 {
		t.Errorf("skipped = %d, want 6", fast.StageTimings().Skipped)
	}
}

// TestSkipValidation covers the construction-time and reconfigure-time
// rejection of negative thresholds.
func TestSkipValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipEventsBelow = -1
	if _, err := NewEBBIOT(cfg); err == nil {
		t.Error("negative SkipEventsBelow accepted at construction")
	}
	sys, err := NewEBBIOT(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.ApplyParams(cfg); err == nil {
		t.Error("negative SkipEventsBelow accepted by ApplyParams")
	}
}
