package core

import (
	"fmt"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
)

// TwoTimescale implements the extension sketched in the paper's conclusion:
// "we have not tracked slow and small objects like humans — this can be
// done by a two time scale approach where a second frame is generated with
// longer exposure times to capture activity of humans."
//
// A fast EBBIOT pipeline runs at the base tF for vehicles, and a second
// pipeline accumulates events over SlowFactor consecutive windows before
// producing a frame, so slow walkers — whose per-66 ms event yield is too
// sparse to survive the median filter and RPN threshold — integrate enough
// events to form solid regions. Slow-pipeline tracks that duplicate a fast
// track (by IoU) are suppressed; the remainder are reported alongside the
// fast tracks at every base frame.
type TwoTimescale struct {
	fast *EBBIOT
	slow *EBBIOT
	// factor is the exposure multiple of the slow pipeline.
	factor int
	// pending buffers the events of the current slow exposure.
	pending []events.Event
	// windowCount counts base windows into the current slow exposure.
	windowCount int
	// slowBoxes holds the slow pipeline's last output, reported until the
	// next slow frame completes.
	slowBoxes []geometry.Box
	// dedupIoU suppresses slow tracks overlapping a fast track.
	dedupIoU float64
}

var _ System = (*TwoTimescale)(nil)

// TwoTimescaleConfig parameterises the extension.
type TwoTimescaleConfig struct {
	// Fast is the base pipeline configuration (tF = 66 ms in the paper).
	Fast Config
	// SlowFactor is the exposure multiple for the slow pipeline; 4 gives
	// the 264 ms exposure a walking human needs at DAVIS scale.
	SlowFactor int
	// DedupIoU suppresses slow tracks whose IoU with any fast track
	// exceeds this value.
	DedupIoU float64
}

// DefaultTwoTimescaleConfig returns a 4x slow exposure over the default
// EBBIOT parameters, with the slow RPN kept as-is (its threshold is already
// minimal) and slow-track dedup at IoU 0.3.
func DefaultTwoTimescaleConfig() TwoTimescaleConfig {
	return TwoTimescaleConfig{
		Fast:       DefaultConfig(),
		SlowFactor: 4,
		DedupIoU:   0.3,
	}
}

// NewTwoTimescale builds the two-pipeline system.
func NewTwoTimescale(cfg TwoTimescaleConfig) (*TwoTimescale, error) {
	if cfg.SlowFactor < 2 {
		return nil, fmt.Errorf("core: SlowFactor must be >= 2, got %d", cfg.SlowFactor)
	}
	if cfg.DedupIoU < 0 || cfg.DedupIoU > 1 {
		return nil, fmt.Errorf("core: DedupIoU must be in [0,1], got %v", cfg.DedupIoU)
	}
	fast, err := NewEBBIOT(cfg.Fast)
	if err != nil {
		return nil, err
	}
	slowCfg := cfg.Fast
	slowCfg.EBBI.FrameUS = cfg.Fast.EBBI.FrameUS * int64(cfg.SlowFactor)
	// The slow tracker sees frames SlowFactor times less often; scale its
	// miss budget down so stale tracks do not linger for seconds.
	if slowCfg.Tracker.MaxMisses > 1 {
		slowCfg.Tracker.MaxMisses = 2
	}
	slow, err := NewEBBIOT(slowCfg)
	if err != nil {
		return nil, err
	}
	return &TwoTimescale{
		fast:     fast,
		slow:     slow,
		factor:   cfg.SlowFactor,
		dedupIoU: cfg.DedupIoU,
	}, nil
}

// Name implements System.
func (t *TwoTimescale) Name() string { return "EBBIOT-2TS" }

// ProcessWindow implements System: every base window feeds the fast
// pipeline; every SlowFactor windows the buffered events feed the slow
// pipeline. Output is the fast tracks plus non-duplicate slow tracks.
func (t *TwoTimescale) ProcessWindow(evs []events.Event) ([]geometry.Box, error) {
	fastBoxes, err := t.fast.ProcessWindow(evs)
	if err != nil {
		return nil, err
	}
	t.pending = append(t.pending, evs...)
	t.windowCount++
	if t.windowCount >= t.factor {
		slowBoxes, err := t.slow.ProcessWindow(t.pending)
		if err != nil {
			return nil, err
		}
		t.slowBoxes = slowBoxes
		t.pending = t.pending[:0]
		t.windowCount = 0
	}
	out := append([]geometry.Box(nil), fastBoxes...)
	for _, sb := range t.slowBoxes {
		dup := false
		for _, fb := range fastBoxes {
			if sb.IoU(fb) > t.dedupIoU {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, sb)
		}
	}
	return out, nil
}

// Fast and Slow expose the underlying pipelines for instrumentation.
func (t *TwoTimescale) Fast() *EBBIOT { return t.fast }

// Close releases both sub-pipelines' EBBI buffers back to the bitmap pool;
// the system must not be used afterwards.
func (t *TwoTimescale) Close() {
	t.fast.Close()
	t.slow.Close()
}

// Slow returns the long-exposure pipeline.
func (t *TwoTimescale) Slow() *EBBIOT { return t.slow }
