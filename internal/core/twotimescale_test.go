package core

import (
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/metrics"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

// humanScene returns a slow pedestrian plus a car: the mixed-speed scene
// the paper's two-timescale extension targets. The human's event yield per
// 66 ms frame is marginal; the car's is plentiful.
func humanScene(durationUS int64) *scene.Scene {
	return &scene.Scene{
		Res:        events.DAVIS240,
		DurationUS: durationUS,
		Objects: []scene.Object{
			{
				ID: 0, Kind: scene.KindHuman, W: 7, H: 15, LaneY: 20,
				X0: 60, VX: 6, EnterUS: 0, ExitUS: durationUS, Z: 1,
				EdgeDensity: 0.8, InteriorDensity: 0.25,
			},
			{
				ID: 1, Kind: scene.KindCar, W: 32, H: 18, LaneY: 90,
				X0: -32, VX: 60, EnterUS: 0, ExitUS: durationUS, Z: 2,
				EdgeDensity: 0.9, InteriorDensity: 0.2,
			},
		},
	}
}

func TestTwoTimescaleConfigValidation(t *testing.T) {
	cfg := DefaultTwoTimescaleConfig()
	cfg.SlowFactor = 1
	if _, err := NewTwoTimescale(cfg); err == nil {
		t.Error("SlowFactor < 2 should error")
	}
	cfg = DefaultTwoTimescaleConfig()
	cfg.DedupIoU = 2
	if _, err := NewTwoTimescale(cfg); err == nil {
		t.Error("DedupIoU > 1 should error")
	}
	cfg = DefaultTwoTimescaleConfig()
	cfg.Fast.RPN.S1 = 0
	if _, err := NewTwoTimescale(cfg); err == nil {
		t.Error("bad inner config should propagate")
	}
}

func TestTwoTimescaleName(t *testing.T) {
	sys, err := NewTwoTimescale(DefaultTwoTimescaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "EBBIOT-2TS" {
		t.Errorf("name = %s", sys.Name())
	}
	if sys.Fast() == nil || sys.Slow() == nil {
		t.Error("pipelines not exposed")
	}
}

// runHumanScene runs a system over the mixed scene and returns recall for
// the human and for the car separately at IoU 0.3.
func runHumanScene(t *testing.T, sys System, seed uint64) (humanRecall, carRecall float64) {
	t.Helper()
	sc := humanScene(6_000_000)
	cfg := sensor.DefaultConfig(seed)
	cfg.NoiseRatePerPixelHz = 0.3
	sim, err := sensor.New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	var humanHits, humanTotal, carHits, carTotal int
	for cursor := int64(0); cursor+66_000 <= sc.DurationUS; cursor += 66_000 {
		evs, err := sim.Events(cursor, cursor+66_000)
		if err != nil {
			t.Fatal(err)
		}
		boxes, err := sys.ProcessWindow(evs)
		if err != nil {
			t.Fatal(err)
		}
		if cursor < 1_000_000 {
			continue // warm-up
		}
		for _, g := range sc.GroundTruth(cursor+66_000, 20) {
			matched := false
			for _, b := range boxes {
				if b.IoU(g.Box) > 0.3 {
					matched = true
					break
				}
			}
			if g.Kind == scene.KindHuman {
				humanTotal++
				if matched {
					humanHits++
				}
			} else {
				carTotal++
				if matched {
					carHits++
				}
			}
		}
	}
	if humanTotal == 0 || carTotal == 0 {
		t.Fatalf("degenerate ground truth: human=%d car=%d", humanTotal, carTotal)
	}
	return float64(humanHits) / float64(humanTotal), float64(carHits) / float64(carTotal)
}

func TestTwoTimescaleRecoversHumans(t *testing.T) {
	base, err := NewEBBIOT(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseHuman, baseCar := runHumanScene(t, base, 31)

	two, err := NewTwoTimescale(DefaultTwoTimescaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	twoHuman, twoCar := runHumanScene(t, two, 31)

	t.Logf("human recall: base=%.2f two-timescale=%.2f; car recall: base=%.2f two=%.2f",
		baseHuman, twoHuman, baseCar, twoCar)
	// The paper's motivation: the base pipeline misses slow humans...
	if baseHuman > 0.5 {
		t.Errorf("base pipeline human recall %.2f unexpectedly high — scene too easy to demonstrate the extension", baseHuman)
	}
	// ...and the longer exposure recovers them...
	if twoHuman < baseHuman+0.3 {
		t.Errorf("two-timescale human recall %.2f did not improve enough over base %.2f", twoHuman, baseHuman)
	}
	// ...without hurting vehicle tracking.
	if twoCar < baseCar-0.05 {
		t.Errorf("two-timescale car recall %.2f regressed from %.2f", twoCar, baseCar)
	}
}

func TestTwoTimescaleDedup(t *testing.T) {
	// A single fast-moving car: the slow pipeline sees it too (smeared over
	// 4 frames), but its boxes must be deduplicated against the fast ones,
	// not double-reported... unless they genuinely differ.
	sys, err := NewTwoTimescale(DefaultTwoTimescaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := scene.SingleObjectScene(events.DAVIS240, 4_000_000)
	cfg := sensor.DefaultConfig(33)
	cfg.NoiseRatePerPixelHz = 0.3
	sim, err := sensor.New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	var samples []metrics.FrameSample
	for cursor := int64(0); cursor+66_000 <= sc.DurationUS; cursor += 66_000 {
		evs, err := sim.Events(cursor, cursor+66_000)
		if err != nil {
			t.Fatal(err)
		}
		boxes, err := sys.ProcessWindow(evs)
		if err != nil {
			t.Fatal(err)
		}
		if cursor < 1_000_000 {
			continue
		}
		gt := sc.GroundTruth(cursor+66_000, 20)
		gtBoxes := make([]geometry.Box, len(gt))
		for i, g := range gt {
			gtBoxes[i] = g.Box
		}
		samples = append(samples, metrics.FrameSample{Tracker: boxes, GroundTruth: gtBoxes})
	}
	c := metrics.Evaluate(samples, 0.3)
	// Precision stays high only if slow duplicates are suppressed: a
	// smeared duplicate box per frame would halve it.
	if c.Precision() < 0.75 {
		t.Errorf("two-timescale precision %.2f suggests duplicate reporting", c.Precision())
	}
}
