package core

import (
	"reflect"
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/roe"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

// runBoth replays the same simulated recording through a fast-path and a
// reference-path system and returns the per-window box sequences.
func runBoth(t *testing.T, fast, ref System, sc *scene.Scene, seed uint64) (fastBoxes, refBoxes [][]geometry.Box) {
	t.Helper()
	cfg := sensor.DefaultConfig(seed)
	cfg.NoiseRatePerPixelHz = 1.0
	sim, err := sensor.New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	for cursor := int64(0); cursor+66_000 <= sc.DurationUS; cursor += 66_000 {
		evs, err := sim.Events(cursor, cursor+66_000)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := fast.ProcessWindow(evs)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := ref.ProcessWindow(evs)
		if err != nil {
			t.Fatal(err)
		}
		fastBoxes = append(fastBoxes, fb)
		refBoxes = append(refBoxes, rb)
	}
	return fastBoxes, refBoxes
}

// TestEBBIOTPackedMatchesReference replays a two-object crossing scene (with
// an ROE zone installed, so the packed masking path runs too) through the
// default packed pipeline and the byte reference pipeline: every window's
// reported tracks must be identical, and so must the lazily unpacked frames.
func TestEBBIOTPackedMatchesReference(t *testing.T) {
	mask := roe.New(geometry.NewBox(0, 160, 60, 20))
	fast, err := NewEBBIOT(DefaultConfig().WithROE(mask))
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	refCfg := DefaultConfig().WithROE(mask)
	refCfg.Reference = true
	ref, err := NewEBBIOT(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	sc := scene.CrossingScene(events.DAVIS240, 3_000_000)
	fastBoxes, refBoxes := runBoth(t, fast, ref, sc, 21)
	if !reflect.DeepEqual(fastBoxes, refBoxes) {
		t.Fatalf("packed and reference EBBIOT diverged:\nfast %v\nref  %v", fastBoxes, refBoxes)
	}

	ff, rf := fast.LastFrame(), ref.LastFrame()
	if ff == nil || rf == nil {
		t.Fatal("LastFrame nil after processing")
	}
	if ff.Index != rf.Index || ff.EventCount != rf.EventCount {
		t.Fatalf("frame metadata mismatch: %d/%d vs %d/%d", ff.Index, ff.EventCount, rf.Index, rf.EventCount)
	}
	if !ff.Raw.Equal(rf.Raw) || !ff.Filtered.Equal(rf.Filtered) {
		t.Fatal("unpacked LastFrame differs from reference frame")
	}
	if !reflect.DeepEqual(fast.LastRPN().Proposals, ref.LastRPN().Proposals) {
		t.Fatal("LastRPN proposals differ between paths")
	}

	st := fast.StageTimings()
	if st.Windows == 0 || st.Filter <= 0 || st.RPN <= 0 {
		t.Fatalf("stage timings not recorded: %+v", st)
	}
}

// TestEBBIKFPackedMatchesReference does the same for the Kalman comparison
// system.
func TestEBBIKFPackedMatchesReference(t *testing.T) {
	fast, err := NewEBBIKF(DefaultKFConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	refCfg := DefaultKFConfig()
	refCfg.Reference = true
	ref, err := NewEBBIKF(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	fastBoxes, refBoxes := runBoth(t, fast, ref, sc, 33)
	if !reflect.DeepEqual(fastBoxes, refBoxes) {
		t.Fatalf("packed and reference EBBI+KF diverged:\nfast %v\nref  %v", fastBoxes, refBoxes)
	}
	if fast.StageTimings().Windows == 0 {
		t.Fatal("stage timings not recorded")
	}
}

// TestActiveFractionAccounting pins the sparsity stat the monitoring
// surface reports: the packed path accumulates the active-region coverage
// per window (well under full frame for a single-object scene), while the
// byte reference path counts every window as fully dense.
func TestActiveFractionAccounting(t *testing.T) {
	fast, err := NewEBBIOT(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	refCfg := DefaultConfig()
	refCfg.Reference = true
	ref, err := NewEBBIOT(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	// A localized object patch: deterministic, clearly sparse (scene-level
	// noise would dirty most words and hide the fraction under test).
	var evs []events.Event
	for y := 60; y < 80; y++ {
		for x := 100; x < 130; x += 2 {
			evs = append(evs, events.Event{X: int16(x), Y: int16(y)})
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := fast.ProcessWindow(evs); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ProcessWindow(evs); err != nil {
			t.Fatal(err)
		}
	}

	ft := fast.StageTimings()
	if ft.FrameWords == 0 || ft.ActiveWords <= 0 {
		t.Fatalf("packed path recorded no coverage: %+v", ft)
	}
	if frac := ft.MeanActiveFraction(); frac <= 0 || frac >= 0.5 {
		t.Fatalf("single-object scene active fraction = %.3f, want sparse (0, 0.5)", frac)
	}
	rt := ref.StageTimings()
	if rt.MeanActiveFraction() != 1 {
		t.Fatalf("reference path active fraction = %.3f, want 1", rt.MeanActiveFraction())
	}
	sum := ft.Add(rt)
	if sum.ActiveWords != ft.ActiveWords+rt.ActiveWords || sum.FrameWords != ft.FrameWords+rt.FrameWords {
		t.Fatal("StageTimings.Add drops the coverage counters")
	}
}
