// Package core assembles the paper's three end-to-end tracking systems
// behind a single frame-synchronous interface:
//
//   - EBBIOT (the paper's contribution): EBBI accumulation + binary median
//     filter + histogram region proposal + overlap tracker;
//   - EBBI+KF: the same front end with the Kalman-filter tracker;
//   - EBMS: nearest-neighbour event filter + event-based mean shift.
//
// All three consume raw sensor events one frame window (tF) at a time and
// report integer track boxes at each frame boundary, which is exactly how
// the paper evaluates them (boxes sampled at fixed intervals, Section
// III-B). EBMS processes events within the window event-by-event — its
// per-event nature is preserved; only the reporting is frame-aligned.
//
// The EBBI-based systems run their frame chain in one of two
// representations. The default is the packed fast path: events accumulate
// straight into a 64-pixel-per-word EBBI and the median, histograms and
// validity checks are word-parallel popcount kernels (imgproc.PackedBitmap),
// with no byte-per-pixel frame ever materialized. Setting Reference selects
// the byte-per-pixel path instead, which matches the paper's cost-model
// accounting (Eq. 1) and serves as the differential-test oracle; the two
// paths are bit-identical by construction and by test.
package core

import (
	"fmt"
	"time"

	"ebbiot/internal/ebbi"
	"ebbiot/internal/ebms"
	"ebbiot/internal/events"
	"ebbiot/internal/filter"
	"ebbiot/internal/geometry"
	"ebbiot/internal/imgproc"
	"ebbiot/internal/kalman"
	"ebbiot/internal/roe"
	"ebbiot/internal/rpn"
	"ebbiot/internal/tracker"
)

// System is a frame-synchronous tracking pipeline.
//
// Aliasing contract: ProcessWindow must not retain evs after returning —
// callers (the streaming pipeline in particular) recycle the window buffer
// for the next frame. Conversely, the returned box slice is freshly
// allocated each call and safe for the caller to retain, but auxiliary
// accessors (EBBIOT.LastFrame, EBBIOT.LastRPN) alias internal buffers that
// are valid only until the next ProcessWindow; callers that fan results out
// across goroutines must deep-copy into snapshots at the window boundary,
// which pipeline.Runner does.
type System interface {
	// Name identifies the pipeline in reports ("EBBIOT", "EBBI+KF",
	// "EBMS").
	Name() string
	// ProcessWindow consumes one frame window of events (already sliced to
	// [k*tF, (k+1)*tF)) and returns the tracks reported at the window end.
	// Implementations must not retain evs; the returned slice must be fresh
	// (see the System aliasing contract above).
	ProcessWindow(evs []events.Event) ([]geometry.Box, error)
}

// WindowBatcher is implemented by systems that can consume several
// consecutive frame windows in one call. The result is defined to be
// identical to calling ProcessWindow on each window in order — batching is
// purely a dispatch optimisation that lets drivers amortize their per-call
// bookkeeping (tuning checks, status publication, interface dispatch) over
// a run of windows. Each wins[i] obeys the ProcessWindow aliasing contract:
// the implementation must not retain it, and each returned slice is fresh.
type WindowBatcher interface {
	ProcessWindowBatch(wins [][]events.Event) ([][]geometry.Box, error)
}

// StageTimings accumulates per-stage wall-clock over the windows a system
// has processed, the breakdown behind the paper's duty-cycle active slice:
// EBBI accumulation, median filtering, region proposal and tracker step.
// Mean per-window times are totals divided by Windows.
type StageTimings struct {
	// Windows is the number of ProcessWindow calls accumulated.
	Windows int64
	// Skipped counts the windows the near-empty fast path bypassed: their
	// event count was below the configured threshold, so the median /
	// proposal stages never ran and the tracker stepped with no
	// detections. Skipped windows are included in Windows.
	Skipped int64
	// EBBI is time spent latching events into the frame.
	EBBI time.Duration
	// Filter is time spent in the binary median (the Finish call).
	Filter time.Duration
	// RPN is time spent in region proposal (including ROE masking).
	RPN time.Duration
	// Track is time spent stepping the tracker.
	Track time.Duration
	// ActiveWords and FrameWords accumulate, per window, how much of the
	// packed frame the active region marked dirty versus the frame's total
	// word count. Their ratio is the mean active-pixel fraction — the
	// sparsity the activity-bounded kernels exploit. On the byte reference
	// path (which has no region tracking) every window counts as fully
	// active.
	ActiveWords int64
	FrameWords  int64
}

// Add returns the element-wise sum, for aggregating across streams.
func (t StageTimings) Add(o StageTimings) StageTimings {
	return StageTimings{
		Windows:     t.Windows + o.Windows,
		Skipped:     t.Skipped + o.Skipped,
		EBBI:        t.EBBI + o.EBBI,
		Filter:      t.Filter + o.Filter,
		RPN:         t.RPN + o.RPN,
		Track:       t.Track + o.Track,
		ActiveWords: t.ActiveWords + o.ActiveWords,
		FrameWords:  t.FrameWords + o.FrameWords,
	}
}

// MeanActiveFraction returns the mean active-pixel fraction over the
// accumulated windows (1 when fully dense, 0 before any window).
func (t StageTimings) MeanActiveFraction() float64 {
	if t.FrameWords == 0 {
		return 0
	}
	return float64(t.ActiveWords) / float64(t.FrameWords)
}

// StageTimer is implemented by systems that record per-stage timings
// (EBBIOT and EBBI+KF); the ebbiot-run CLI uses it for the throughput
// breakdown.
type StageTimer interface {
	StageTimings() StageTimings
}

// Config parameterises the EBBIOT pipeline.
type Config struct {
	EBBI    ebbi.Config
	RPN     rpn.Config
	Tracker tracker.Config
	// Reference selects the byte-per-pixel frame chain — the paper's
	// cost-model accounting path — instead of the packed word-parallel
	// fast path. Tracking output is bit-identical either way.
	Reference bool
	// SkipEventsBelow enables the near-empty window fast path: a window
	// whose in-array event count is below this threshold bypasses the
	// median / downsample / proposal stages entirely and reports no
	// detections (the tracker still steps, so tracks age normally). 0
	// disables. Thresholds up to LosslessSkipThreshold(MedianP) are
	// provably lossless — the skipped stages could not have produced any
	// proposal — while larger values trade recall on faint objects for
	// per-window cost. The decision uses the same count on both frame
	// representations, so the packed/byte differential contract holds at
	// any threshold.
	SkipEventsBelow int
}

// LosslessSkipThreshold returns the largest provably lossless
// SkipEventsBelow for median patch size p: with fewer than floor(p^2/2)+1
// set pixels in the whole array, no p x p patch can exceed the median
// threshold, so the filtered frame — and therefore the proposal set — is
// empty regardless.
func LosslessSkipThreshold(p int) int { return (p*p)/2 + 1 }

// DefaultConfig returns the paper's full parameter set on the packed fast
// path. The near-empty fast path is on at its lossless threshold for the
// default patch size; callers lowering MedianP below the default should
// re-derive SkipEventsBelow.
func DefaultConfig() Config {
	e := ebbi.DefaultConfig()
	return Config{
		EBBI:            e,
		RPN:             rpn.DefaultConfig(),
		Tracker:         tracker.DefaultConfig(),
		SkipEventsBelow: LosslessSkipThreshold(e.MedianP),
	}
}

// WithROE returns the config with the exclusion mask installed.
func (c Config) WithROE(mask *roe.Mask) Config {
	c.Tracker.ROE = mask
	return c
}

// frontend is the EBBI + RPN front end shared by the EBBIOT and EBBI+KF
// systems, in either frame representation. Exactly one of builder/pbuilder
// is non-nil.
type frontend struct {
	builder  *ebbi.Builder       // reference byte-per-pixel path
	pbuilder *ebbi.PackedBuilder // packed word-parallel fast path
	proposer *rpn.Proposer
	mask     *roe.Mask
	// skipBelow is the near-empty window threshold (0 = disabled); see
	// Config.SkipEventsBelow.
	skipBelow int
	timings   StageTimings

	// lastFrame / lastPacked retain the most recent frame for
	// visualisation; valid when lastValid.
	lastFrame  ebbi.Frame
	lastPacked ebbi.PackedFrame
	lastValid  bool
	// rawScratch/filtScratch hold the lazily unpacked byte frames handed
	// out by frame() on the fast path.
	rawScratch, filtScratch *imgproc.Bitmap
}

func newFrontend(ecfg ebbi.Config, rcfg rpn.Config, mask *roe.Mask, reference bool, skipBelow int) (*frontend, error) {
	if skipBelow < 0 {
		return nil, fmt.Errorf("core: skip-events-below must be non-negative, got %d", skipBelow)
	}
	p, err := rpn.New(rcfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	f := &frontend{proposer: p, mask: mask, skipBelow: skipBelow}
	if reference {
		f.builder, err = ebbi.NewBuilder(ecfg)
	} else {
		f.pbuilder, err = ebbi.NewPackedBuilder(ecfg)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return f, nil
}

// process runs accumulate + filter + mask + propose for one window,
// recording per-stage times. The caller accounts the tracker stage itself
// via trackTime.
func (f *frontend) process(evs []events.Event) (rpn.Result, error) {
	t0 := time.Now()
	var res rpn.Result
	if f.pbuilder != nil {
		f.pbuilder.Accumulate(evs)
		t1 := time.Now()
		if f.skipBelow > 0 && f.pbuilder.Pending() < f.skipBelow {
			// Near-empty window: drop the frame without filtering. The
			// window still counts (and the caller still steps the
			// tracker); the activity accounting only covers processed
			// windows. The skip decision reads the same in-array count as
			// the byte path below, keeping the representations aligned.
			f.pbuilder.SkipWindow()
			f.timings.EBBI += t1.Sub(t0)
			f.timings.Windows++
			f.timings.Skipped++
			return rpn.Result{}, nil
		}
		frame, err := f.pbuilder.Finish()
		if err != nil {
			return rpn.Result{}, fmt.Errorf("core: ebbi: %w", err)
		}
		t2 := time.Now()
		// Exclusion zones are blanked in the image before region proposal:
		// the histograms project over full rows/columns, so distractor
		// pixels anywhere in a column would otherwise contaminate every
		// proposal. The frame's active region bounds the masking and the
		// RPN, so no stage rescans dead frame area.
		if f.mask != nil {
			f.mask.MaskPackedRegion(frame.Filtered, frame.Active)
		}
		res, err = f.proposer.ProposePackedRegion(frame.Filtered, frame.Active)
		if err != nil {
			return rpn.Result{}, fmt.Errorf("core: rpn: %w", err)
		}
		t3 := time.Now()
		f.lastPacked = frame
		f.timings.EBBI += t1.Sub(t0)
		f.timings.Filter += t2.Sub(t1)
		f.timings.RPN += t3.Sub(t2)
		f.timings.ActiveWords += int64(frame.Active.CoverageWords())
		f.timings.FrameWords += int64(frame.Active.FrameWords())
	} else {
		f.builder.Accumulate(evs)
		t1 := time.Now()
		if f.skipBelow > 0 && f.builder.Pending() < f.skipBelow {
			f.builder.SkipWindow()
			f.timings.EBBI += t1.Sub(t0)
			f.timings.Windows++
			f.timings.Skipped++
			return rpn.Result{}, nil
		}
		frame, err := f.builder.Finish()
		if err != nil {
			return rpn.Result{}, fmt.Errorf("core: ebbi: %w", err)
		}
		t2 := time.Now()
		if f.mask != nil {
			f.mask.MaskBitmap(frame.Filtered)
		}
		res, err = f.proposer.Propose(frame.Filtered)
		if err != nil {
			return rpn.Result{}, fmt.Errorf("core: rpn: %w", err)
		}
		t3 := time.Now()
		f.lastFrame = frame
		f.timings.EBBI += t1.Sub(t0)
		f.timings.Filter += t2.Sub(t1)
		f.timings.RPN += t3.Sub(t2)
		// The byte path scans full frames; count it as fully active so the
		// fraction stays comparable across representations.
		words := int64((frame.Raw.W + 63) / 64 * frame.Raw.H)
		f.timings.ActiveWords += words
		f.timings.FrameWords += words
	}
	f.lastValid = true
	f.timings.Windows++
	return res, nil
}

func (f *frontend) trackTime(d time.Duration) { f.timings.Track += d }

// reconfigure rebuilds the front end in place for new parameters: the
// builder is reconfigured (or swapped when the representation changes), the
// proposer takes the new RPN config, and frame state resets — afterwards the
// front end is indistinguishable from a freshly built one. Cumulative stage
// timings deliberately survive so monitoring reads continuous totals across
// reconfigurations. On error nothing is mutated.
func (f *frontend) reconfigure(ecfg ebbi.Config, rcfg rpn.Config, mask *roe.Mask, reference bool, skipBelow int) error {
	if skipBelow < 0 {
		return fmt.Errorf("core: skip-events-below must be non-negative, got %d", skipBelow)
	}
	if err := ecfg.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := rcfg.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	switch {
	case reference && f.builder != nil:
		if err := f.builder.Reconfigure(ecfg); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	case !reference && f.pbuilder != nil:
		if err := f.pbuilder.Reconfigure(ecfg); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	case reference:
		// Fast path -> reference: swap the builder representation.
		b, err := ebbi.NewBuilder(ecfg)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		f.pbuilder.Release()
		f.pbuilder = nil
		f.builder = b
	default:
		// Reference -> fast path.
		pb, err := ebbi.NewPackedBuilder(ecfg)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		f.builder.Release()
		f.builder = nil
		f.pbuilder = pb
	}
	if err := f.proposer.Reconfigure(rcfg); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	f.mask = mask
	f.skipBelow = skipBelow
	f.lastValid = false
	return nil
}

// frame returns the most recent EBBI frame in byte form. On the reference
// path it aliases the builder's double buffer directly; on the fast path the
// packed frame is unpacked into scratch bitmaps on demand (visualisation is
// off the hot path, so the conversion cost lands only on callers that ask).
// Valid until the next process call; nil before the first window.
func (f *frontend) frame() *ebbi.Frame {
	if !f.lastValid {
		return nil
	}
	if f.builder != nil {
		return &f.lastFrame
	}
	pf := f.lastPacked
	f.rawScratch = pf.Raw.Unpack(f.rawScratch)
	f.filtScratch = pf.Filtered.Unpack(f.filtScratch)
	f.lastFrame = ebbi.Frame{
		Index:      pf.Index,
		Start:      pf.Start,
		End:        pf.End,
		Raw:        f.rawScratch,
		Filtered:   f.filtScratch,
		EventCount: pf.EventCount,
	}
	return &f.lastFrame
}

// close releases the frame double buffer back to its pool.
func (f *frontend) close() {
	if f.builder != nil {
		f.builder.Release()
		f.builder = nil
	}
	if f.pbuilder != nil {
		f.pbuilder.Release()
		f.pbuilder = nil
	}
	f.lastValid = false
}

// EBBIOT is the paper's pipeline.
type EBBIOT struct {
	cfg     Config
	front   *frontend
	tracker *tracker.Tracker
	lastRPN rpn.Result
}

var _ System = (*EBBIOT)(nil)
var _ StageTimer = (*EBBIOT)(nil)
var _ WindowBatcher = (*EBBIOT)(nil)

// NewEBBIOT builds the pipeline.
func NewEBBIOT(cfg Config) (*EBBIOT, error) {
	tr, err := tracker.New(cfg.Tracker)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	front, err := newFrontend(cfg.EBBI, cfg.RPN, cfg.Tracker.ROE, cfg.Reference, cfg.SkipEventsBelow)
	if err != nil {
		return nil, err
	}
	return &EBBIOT{cfg: cfg, front: front, tracker: tr}, nil
}

// Name implements System.
func (e *EBBIOT) Name() string { return "EBBIOT" }

// Config returns the pipeline's current configuration.
func (e *EBBIOT) Config() Config { return e.cfg }

// ApplyParams reconfigures the pipeline in place — the live-reconfiguration
// hook the control plane calls at a window boundary. The semantics are a
// clean restart: afterwards the system behaves bit-identically to a fresh
// NewEBBIOT(cfg) — the EBBI builder and RPN are rebuilt (reusing buffers
// where the geometry allows) and the tracker state (tracks, IDs, frame
// count) resets — so a live parameter change is exactly equivalent to
// relaunching the pipeline with the new parameters at that boundary, the
// property the differential tests assert. Cumulative stage timings survive
// for monitoring continuity. On error the system keeps running with its old
// parameters.
func (e *EBBIOT) ApplyParams(cfg Config) error {
	tr, err := tracker.New(cfg.Tracker)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := e.front.reconfigure(cfg.EBBI, cfg.RPN, cfg.Tracker.ROE, cfg.Reference, cfg.SkipEventsBelow); err != nil {
		return err
	}
	e.tracker = tr
	e.lastRPN = rpn.Result{}
	e.cfg = cfg
	return nil
}

// ProcessWindow implements System: latch the window's events into the EBBI,
// median-filter, propose regions and step the overlap tracker.
func (e *EBBIOT) ProcessWindow(evs []events.Event) ([]geometry.Box, error) {
	res, err := e.front.process(evs)
	if err != nil {
		return nil, err
	}
	e.lastRPN = res
	t0 := time.Now()
	reports := e.tracker.Step(res.Boxes())
	e.front.trackTime(time.Since(t0))
	out := make([]geometry.Box, len(reports))
	for i, r := range reports {
		out[i] = r.Box
	}
	return out, nil
}

// ProcessWindowBatch implements WindowBatcher: the windows are processed in
// order through the same fused frame chain as ProcessWindow, with per-window
// results bit-identical to the unbatched calls. Auxiliary accessors
// (LastFrame, LastRPN) reflect the final window of the batch.
func (e *EBBIOT) ProcessWindowBatch(wins [][]events.Event) ([][]geometry.Box, error) {
	out := make([][]geometry.Box, len(wins))
	for i, evs := range wins {
		boxes, err := e.ProcessWindow(evs)
		if err != nil {
			return nil, fmt.Errorf("core: batch window %d: %w", i, err)
		}
		out[i] = boxes
	}
	return out, nil
}

// Close returns the pipeline's EBBI double buffer to its pool. The system —
// and any frame previously returned by LastFrame, which may alias those
// buffers — must not be used afterwards. Callers that churn through many
// short-lived systems (evaluation grids, benchmarks) should Close each one
// so the pool actually recycles.
func (e *EBBIOT) Close() { e.front.close() }

// Tracker exposes the underlying overlap tracker for instrumentation.
func (e *EBBIOT) Tracker() *tracker.Tracker { return e.tracker }

// LastFrame returns the most recent EBBI frame in byte form (aliases
// internal buffers; valid until the next ProcessWindow). On the packed fast
// path the frame is unpacked on demand, so callers only pay for conversion
// on the frames they actually inspect.
func (e *EBBIOT) LastFrame() *ebbi.Frame { return e.front.frame() }

// LastRPN returns the most recent region-proposal result.
func (e *EBBIOT) LastRPN() rpn.Result { return e.lastRPN }

// StageTimings implements StageTimer.
func (e *EBBIOT) StageTimings() StageTimings { return e.front.timings }

// EBBIKF is the EBBI + Kalman-filter comparison pipeline.
type EBBIKF struct {
	cfg      KFConfig
	front    *frontend
	tracker  *kalman.Tracker
	mask     *roe.Mask
	maxCover float64
}

var _ System = (*EBBIKF)(nil)
var _ StageTimer = (*EBBIKF)(nil)
var _ WindowBatcher = (*EBBIKF)(nil)

// KFConfig parameterises the EBBI+KF pipeline.
type KFConfig struct {
	EBBI    ebbi.Config
	RPN     rpn.Config
	Tracker kalman.Config
	// ROE applies the same exclusion zones the OT uses, for a fair
	// comparison.
	ROE         *roe.Mask
	ROEMaxCover float64
	// Reference selects the byte-per-pixel frame chain (see Config).
	Reference bool
	// SkipEventsBelow enables the near-empty window fast path (see
	// Config.SkipEventsBelow).
	SkipEventsBelow int
}

// DefaultKFConfig returns the comparison configuration.
func DefaultKFConfig() KFConfig {
	e := ebbi.DefaultConfig()
	return KFConfig{
		EBBI:            e,
		RPN:             rpn.DefaultConfig(),
		Tracker:         kalman.DefaultConfig(),
		ROEMaxCover:     0.5,
		SkipEventsBelow: LosslessSkipThreshold(e.MedianP),
	}
}

// NewEBBIKF builds the pipeline.
func NewEBBIKF(cfg KFConfig) (*EBBIKF, error) {
	tr, err := kalman.New(cfg.Tracker)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	front, err := newFrontend(cfg.EBBI, cfg.RPN, cfg.ROE, cfg.Reference, cfg.SkipEventsBelow)
	if err != nil {
		return nil, err
	}
	return &EBBIKF{cfg: cfg, front: front, tracker: tr, mask: cfg.ROE, maxCover: cfg.ROEMaxCover}, nil
}

// Name implements System.
func (e *EBBIKF) Name() string { return "EBBI+KF" }

// Config returns the pipeline's current configuration.
func (e *EBBIKF) Config() KFConfig { return e.cfg }

// ApplyParams reconfigures the pipeline in place with clean-restart
// semantics, mirroring EBBIOT.ApplyParams: afterwards the system behaves
// bit-identically to a fresh NewEBBIKF(cfg). On error the system keeps
// running with its old parameters.
func (e *EBBIKF) ApplyParams(cfg KFConfig) error {
	tr, err := kalman.New(cfg.Tracker)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := e.front.reconfigure(cfg.EBBI, cfg.RPN, cfg.ROE, cfg.Reference, cfg.SkipEventsBelow); err != nil {
		return err
	}
	e.tracker = tr
	e.mask = cfg.ROE
	e.maxCover = cfg.ROEMaxCover
	e.cfg = cfg
	return nil
}

// Close returns the pipeline's EBBI double buffer to its pool; the system
// must not be used afterwards.
func (e *EBBIKF) Close() { e.front.close() }

// StageTimings implements StageTimer.
func (e *EBBIKF) StageTimings() StageTimings { return e.front.timings }

// ProcessWindow implements System.
func (e *EBBIKF) ProcessWindow(evs []events.Event) ([]geometry.Box, error) {
	res, err := e.front.process(evs)
	if err != nil {
		return nil, err
	}
	boxes := res.Boxes()
	if e.mask != nil {
		boxes = e.mask.FilterBoxes(boxes, e.maxCover)
	}
	t0 := time.Now()
	reports, err := e.tracker.Step(boxes)
	e.front.trackTime(time.Since(t0))
	if err != nil {
		return nil, fmt.Errorf("core: kalman: %w", err)
	}
	out := make([]geometry.Box, len(reports))
	for i, r := range reports {
		out[i] = r.Box
	}
	return out, nil
}

// ProcessWindowBatch implements WindowBatcher; see
// EBBIOT.ProcessWindowBatch for the batch contract.
func (e *EBBIKF) ProcessWindowBatch(wins [][]events.Event) ([][]geometry.Box, error) {
	out := make([][]geometry.Box, len(wins))
	for i, evs := range wins {
		boxes, err := e.ProcessWindow(evs)
		if err != nil {
			return nil, fmt.Errorf("core: batch window %d: %w", i, err)
		}
		out[i] = boxes
	}
	return out, nil
}

// EBMSSystem is the fully event-based comparison pipeline: NN-filt + mean
// shift.
type EBMSSystem struct {
	nn   *filter.NNFilter
	ms   *ebms.Tracker
	mask *roe.Mask
	// maxCover mirrors the OT's ROE handling.
	maxCover float64
	// nfSum / frames measure the post-filter event rate (NF of Eq. 8).
	nfSum  int64
	frames int64
}

var _ System = (*EBMSSystem)(nil)

// EBMSConfig parameterises the EBMS pipeline.
type EBMSConfig struct {
	Res events.Resolution
	// NNP and NNSupportUS configure the nearest-neighbour filter.
	NNP         int
	NNSupportUS int64
	Tracker     ebms.Config
	ROE         *roe.Mask
	ROEMaxCover float64
}

// DefaultEBMSConfig returns the comparison configuration.
func DefaultEBMSConfig() EBMSConfig {
	return EBMSConfig{
		Res:         events.DAVIS240,
		NNP:         3,
		NNSupportUS: 20_000,
		Tracker:     ebms.DefaultConfig(),
		ROEMaxCover: 0.5,
	}
}

// NewEBMS builds the pipeline.
func NewEBMS(cfg EBMSConfig) (*EBMSSystem, error) {
	nn, err := filter.NewNN(cfg.Res, cfg.NNP, cfg.NNSupportUS)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ms, err := ebms.New(cfg.Tracker)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &EBMSSystem{nn: nn, ms: ms, mask: cfg.ROE, maxCover: cfg.ROEMaxCover}, nil
}

// Name implements System.
func (e *EBMSSystem) Name() string { return "EBMS" }

// ProcessWindow implements System: filter the window's events, feed them to
// the mean-shift clusters one by one, then report visible clusters.
func (e *EBMSSystem) ProcessWindow(evs []events.Event) ([]geometry.Box, error) {
	if e.mask != nil {
		evs = e.mask.FilterEvents(evs)
	}
	kept := e.nn.Filter(evs)
	e.nfSum += int64(len(kept))
	e.frames++
	e.ms.Process(kept)
	reports := e.ms.Reports()
	out := make([]geometry.Box, 0, len(reports))
	for _, r := range reports {
		out = append(out, r.Box)
	}
	if e.mask != nil {
		out = e.mask.FilterBoxes(out, e.maxCover)
	}
	return out, nil
}

// MeanNF returns the measured mean post-filter events per frame (the NF of
// Eq. 8), for cross-checking the resource model.
func (e *EBMSSystem) MeanNF() float64 {
	if e.frames == 0 {
		return 0
	}
	return float64(e.nfSum) / float64(e.frames)
}

// Clusters exposes the underlying mean-shift tracker.
func (e *EBMSSystem) Clusters() *ebms.Tracker { return e.ms }
