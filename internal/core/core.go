// Package core assembles the paper's three end-to-end tracking systems
// behind a single frame-synchronous interface:
//
//   - EBBIOT (the paper's contribution): EBBI accumulation + binary median
//     filter + histogram region proposal + overlap tracker;
//   - EBBI+KF: the same front end with the Kalman-filter tracker;
//   - EBMS: nearest-neighbour event filter + event-based mean shift.
//
// All three consume raw sensor events one frame window (tF) at a time and
// report integer track boxes at each frame boundary, which is exactly how
// the paper evaluates them (boxes sampled at fixed intervals, Section
// III-B). EBMS processes events within the window event-by-event — its
// per-event nature is preserved; only the reporting is frame-aligned.
package core

import (
	"fmt"

	"ebbiot/internal/ebbi"
	"ebbiot/internal/ebms"
	"ebbiot/internal/events"
	"ebbiot/internal/filter"
	"ebbiot/internal/geometry"
	"ebbiot/internal/kalman"
	"ebbiot/internal/roe"
	"ebbiot/internal/rpn"
	"ebbiot/internal/tracker"
)

// System is a frame-synchronous tracking pipeline.
//
// Aliasing contract: ProcessWindow must not retain evs after returning —
// callers (the streaming pipeline in particular) recycle the window buffer
// for the next frame. Conversely, the returned box slice is freshly
// allocated each call and safe for the caller to retain, but auxiliary
// accessors (EBBIOT.LastFrame, EBBIOT.LastRPN) alias internal buffers that
// are valid only until the next ProcessWindow; callers that fan results out
// across goroutines must deep-copy into snapshots at the window boundary,
// which pipeline.Runner does.
type System interface {
	// Name identifies the pipeline in reports ("EBBIOT", "EBBI+KF",
	// "EBMS").
	Name() string
	// ProcessWindow consumes one frame window of events (already sliced to
	// [k*tF, (k+1)*tF)) and returns the tracks reported at the window end.
	// Implementations must not retain evs; the returned slice must be fresh
	// (see the System aliasing contract above).
	ProcessWindow(evs []events.Event) ([]geometry.Box, error)
}

// Config parameterises the EBBIOT pipeline.
type Config struct {
	EBBI    ebbi.Config
	RPN     rpn.Config
	Tracker tracker.Config
}

// DefaultConfig returns the paper's full parameter set.
func DefaultConfig() Config {
	return Config{
		EBBI:    ebbi.DefaultConfig(),
		RPN:     rpn.DefaultConfig(),
		Tracker: tracker.DefaultConfig(),
	}
}

// WithROE returns the config with the exclusion mask installed.
func (c Config) WithROE(mask *roe.Mask) Config {
	c.Tracker.ROE = mask
	return c
}

// EBBIOT is the paper's pipeline.
type EBBIOT struct {
	builder  *ebbi.Builder
	proposer *rpn.Proposer
	tracker  *tracker.Tracker
	// lastFrame retains the most recent filtered frame for visualisation.
	lastFrame *ebbi.Frame
	lastRPN   rpn.Result
}

var _ System = (*EBBIOT)(nil)

// NewEBBIOT builds the pipeline.
func NewEBBIOT(cfg Config) (*EBBIOT, error) {
	b, err := ebbi.NewBuilder(cfg.EBBI)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p, err := rpn.New(cfg.RPN)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tr, err := tracker.New(cfg.Tracker)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &EBBIOT{builder: b, proposer: p, tracker: tr}, nil
}

// Name implements System.
func (e *EBBIOT) Name() string { return "EBBIOT" }

// ProcessWindow implements System: latch the window's events into the EBBI,
// median-filter, propose regions and step the overlap tracker.
func (e *EBBIOT) ProcessWindow(evs []events.Event) ([]geometry.Box, error) {
	e.builder.Accumulate(evs)
	frame, err := e.builder.Finish()
	if err != nil {
		return nil, fmt.Errorf("core: ebbi: %w", err)
	}
	// Exclusion zones are blanked in the image before region proposal:
	// the histograms project over full rows/columns, so distractor pixels
	// anywhere in a column would otherwise contaminate every proposal.
	if mask := e.tracker.Config().ROE; mask != nil {
		mask.MaskBitmap(frame.Filtered)
	}
	res, err := e.proposer.Propose(frame.Filtered)
	if err != nil {
		return nil, fmt.Errorf("core: rpn: %w", err)
	}
	e.lastFrame = &frame
	e.lastRPN = res
	reports := e.tracker.Step(res.Boxes())
	out := make([]geometry.Box, len(reports))
	for i, r := range reports {
		out[i] = r.Box
	}
	return out, nil
}

// Close returns the pipeline's EBBI double buffer to the bitmap pool.
// The system — and any frame previously returned by LastFrame, which
// aliases those buffers — must not be used afterwards. Callers that churn
// through many short-lived systems (evaluation grids, benchmarks) should
// Close each one so the pool actually recycles.
func (e *EBBIOT) Close() {
	e.builder.Release()
	e.lastFrame = nil
}

// Tracker exposes the underlying overlap tracker for instrumentation.
func (e *EBBIOT) Tracker() *tracker.Tracker { return e.tracker }

// LastFrame returns the most recent EBBI frame (aliases internal buffers;
// valid until the next ProcessWindow).
func (e *EBBIOT) LastFrame() *ebbi.Frame { return e.lastFrame }

// LastRPN returns the most recent region-proposal result.
func (e *EBBIOT) LastRPN() rpn.Result { return e.lastRPN }

// EBBIKF is the EBBI + Kalman-filter comparison pipeline.
type EBBIKF struct {
	builder  *ebbi.Builder
	proposer *rpn.Proposer
	tracker  *kalman.Tracker
	mask     *roe.Mask
	maxCover float64
}

var _ System = (*EBBIKF)(nil)

// KFConfig parameterises the EBBI+KF pipeline.
type KFConfig struct {
	EBBI    ebbi.Config
	RPN     rpn.Config
	Tracker kalman.Config
	// ROE applies the same exclusion zones the OT uses, for a fair
	// comparison.
	ROE         *roe.Mask
	ROEMaxCover float64
}

// DefaultKFConfig returns the comparison configuration.
func DefaultKFConfig() KFConfig {
	return KFConfig{
		EBBI:        ebbi.DefaultConfig(),
		RPN:         rpn.DefaultConfig(),
		Tracker:     kalman.DefaultConfig(),
		ROEMaxCover: 0.5,
	}
}

// NewEBBIKF builds the pipeline.
func NewEBBIKF(cfg KFConfig) (*EBBIKF, error) {
	b, err := ebbi.NewBuilder(cfg.EBBI)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p, err := rpn.New(cfg.RPN)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tr, err := kalman.New(cfg.Tracker)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &EBBIKF{builder: b, proposer: p, tracker: tr, mask: cfg.ROE, maxCover: cfg.ROEMaxCover}, nil
}

// Name implements System.
func (e *EBBIKF) Name() string { return "EBBI+KF" }

// Close returns the pipeline's EBBI double buffer to the bitmap pool; the
// system must not be used afterwards.
func (e *EBBIKF) Close() { e.builder.Release() }

// ProcessWindow implements System.
func (e *EBBIKF) ProcessWindow(evs []events.Event) ([]geometry.Box, error) {
	e.builder.Accumulate(evs)
	frame, err := e.builder.Finish()
	if err != nil {
		return nil, fmt.Errorf("core: ebbi: %w", err)
	}
	if e.mask != nil {
		e.mask.MaskBitmap(frame.Filtered)
	}
	res, err := e.proposer.Propose(frame.Filtered)
	if err != nil {
		return nil, fmt.Errorf("core: rpn: %w", err)
	}
	boxes := res.Boxes()
	if e.mask != nil {
		boxes = e.mask.FilterBoxes(boxes, e.maxCover)
	}
	reports, err := e.tracker.Step(boxes)
	if err != nil {
		return nil, fmt.Errorf("core: kalman: %w", err)
	}
	out := make([]geometry.Box, len(reports))
	for i, r := range reports {
		out[i] = r.Box
	}
	return out, nil
}

// EBMSSystem is the fully event-based comparison pipeline: NN-filt + mean
// shift.
type EBMSSystem struct {
	nn   *filter.NNFilter
	ms   *ebms.Tracker
	mask *roe.Mask
	// maxCover mirrors the OT's ROE handling.
	maxCover float64
	// nfSum / frames measure the post-filter event rate (NF of Eq. 8).
	nfSum  int64
	frames int64
}

var _ System = (*EBMSSystem)(nil)

// EBMSConfig parameterises the EBMS pipeline.
type EBMSConfig struct {
	Res events.Resolution
	// NNP and NNSupportUS configure the nearest-neighbour filter.
	NNP         int
	NNSupportUS int64
	Tracker     ebms.Config
	ROE         *roe.Mask
	ROEMaxCover float64
}

// DefaultEBMSConfig returns the comparison configuration.
func DefaultEBMSConfig() EBMSConfig {
	return EBMSConfig{
		Res:         events.DAVIS240,
		NNP:         3,
		NNSupportUS: 20_000,
		Tracker:     ebms.DefaultConfig(),
		ROEMaxCover: 0.5,
	}
}

// NewEBMS builds the pipeline.
func NewEBMS(cfg EBMSConfig) (*EBMSSystem, error) {
	nn, err := filter.NewNN(cfg.Res, cfg.NNP, cfg.NNSupportUS)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ms, err := ebms.New(cfg.Tracker)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &EBMSSystem{nn: nn, ms: ms, mask: cfg.ROE, maxCover: cfg.ROEMaxCover}, nil
}

// Name implements System.
func (e *EBMSSystem) Name() string { return "EBMS" }

// ProcessWindow implements System: filter the window's events, feed them to
// the mean-shift clusters one by one, then report visible clusters.
func (e *EBMSSystem) ProcessWindow(evs []events.Event) ([]geometry.Box, error) {
	if e.mask != nil {
		evs = e.mask.FilterEvents(evs)
	}
	kept := e.nn.Filter(evs)
	e.nfSum += int64(len(kept))
	e.frames++
	e.ms.Process(kept)
	reports := e.ms.Reports()
	out := make([]geometry.Box, 0, len(reports))
	for _, r := range reports {
		out = append(out, r.Box)
	}
	if e.mask != nil {
		out = e.mask.FilterBoxes(out, e.maxCover)
	}
	return out, nil
}

// MeanNF returns the measured mean post-filter events per frame (the NF of
// Eq. 8), for cross-checking the resource model.
func (e *EBMSSystem) MeanNF() float64 {
	if e.frames == 0 {
		return 0
	}
	return float64(e.nfSum) / float64(e.frames)
}

// Clusters exposes the underlying mean-shift tracker.
func (e *EBMSSystem) Clusters() *ebms.Tracker { return e.ms }
