package sensor

import (
	"testing"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/scene"
)

func quietConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.NoiseRatePerPixelHz = 0
	return cfg
}

func TestDeterministicStream(t *testing.T) {
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	gen := func() []events.Event {
		sim, err := New(DefaultConfig(42), sc)
		if err != nil {
			t.Fatal(err)
		}
		evs, err := sim.Events(0, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEventsSortedAndInBounds(t *testing.T) {
	sc := scene.CrossingScene(events.DAVIS240, 3_000_000)
	sim, err := New(DefaultConfig(7), sc)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := sim.Events(0, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no events generated")
	}
	if !events.Sorted(evs) {
		t.Error("stream must be sorted")
	}
	for _, e := range evs {
		if !events.DAVIS240.Contains(int(e.X), int(e.Y)) {
			t.Fatalf("event out of bounds: %v", e)
		}
		if e.T < 0 || e.T >= 1_000_000 {
			t.Fatalf("event time out of window: %v", e)
		}
		if !e.P.Valid() {
			t.Fatalf("invalid polarity: %v", e)
		}
	}
}

func TestContiguousWindowEnforced(t *testing.T) {
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	sim, err := New(DefaultConfig(1), sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Events(0, 100_000); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Events(200_000, 300_000); err == nil {
		t.Error("skipping a window should error")
	}
	if _, err := sim.Events(100_000, 100_000); err == nil {
		t.Error("empty window should error")
	}
	if _, err := sim.Events(100_000, 200_000); err != nil {
		t.Errorf("contiguous window should work: %v", err)
	}
	if sim.Cursor() != 200_000 {
		t.Errorf("cursor = %d", sim.Cursor())
	}
}

func TestNoiseOnlyStream(t *testing.T) {
	// Empty scene: all events are background activity noise at the
	// configured rate.
	sc := &scene.Scene{Res: events.DAVIS240, DurationUS: 1_000_000}
	cfg := DefaultConfig(5)
	cfg.NoiseRatePerPixelHz = 2.0
	cfg.RefractoryUS = 0
	sim, err := New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := sim.Events(0, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: 2 Hz * 43200 px * 1 s = 86400 events; Poisson, so allow 5%.
	want := 86400.0
	got := float64(len(evs))
	if got < want*0.95 || got > want*1.05 {
		t.Errorf("noise event count = %v, want ~%v", got, want)
	}
}

func TestObjectEventsConcentratedOnObject(t *testing.T) {
	sc := scene.SingleObjectScene(events.DAVIS240, 4_000_000)
	sim, err := New(quietConfig(3), sc)
	if err != nil {
		t.Fatal(err)
	}
	// At t=2s the car (entered at x=-32, 60 px/s) spans roughly x in
	// [88, 120], y in [70, 88].
	var evs []events.Event
	var win []events.Event
	cursor := int64(0)
	for cursor < 2_066_000 {
		w, err := sim.Events(cursor, cursor+66_000)
		if err != nil {
			t.Fatal(err)
		}
		cursor += 66_000
		win = w
	}
	evs = win // last 66 ms window, car near x ~ [88,120]
	if len(evs) == 0 {
		t.Fatal("no object events in window")
	}
	expanded := geometry.NewBox(80, 65, 55, 30)
	inside := 0
	for _, e := range evs {
		if expanded.Contains(int(e.X), int(e.Y)) {
			inside++
		}
	}
	frac := float64(inside) / float64(len(evs))
	if frac < 0.99 {
		t.Errorf("only %.2f of noise-free events near object box", frac)
	}
}

func TestEdgePolarities(t *testing.T) {
	// A rightward-moving object: ON events cluster at the leading (right)
	// edge, OFF at the trailing (left) edge.
	sc := scene.SingleObjectScene(events.DAVIS240, 4_000_000)
	cfg := quietConfig(11)
	sim, err := New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	var all []events.Event
	cursor := int64(0)
	for cursor < 2_000_000 {
		w, err := sim.Events(cursor, cursor+66_000)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, w...)
		cursor += 66_000
	}
	// Use interior-free vertical strips: compare mean x of ON vs OFF events
	// in the object band.
	var onX, offX, onN, offN float64
	for _, e := range all {
		if int(e.Y) < 71 || int(e.Y) > 86 {
			continue // only the vertical edge band
		}
		if e.P == events.On {
			onX += float64(e.X)
			onN++
		} else {
			offX += float64(e.X)
			offN++
		}
	}
	if onN == 0 || offN == 0 {
		t.Fatal("missing ON or OFF events")
	}
	if onX/onN <= offX/offN {
		t.Errorf("ON mean x %.1f should exceed OFF mean x %.1f for rightward motion", onX/onN, offX/offN)
	}
}

func TestRefractorySuppressesRate(t *testing.T) {
	sc := &scene.Scene{Res: events.DAVIS240, DurationUS: 1_000_000}
	mk := func(refr int64) int {
		cfg := DefaultConfig(9)
		cfg.NoiseRatePerPixelHz = 400 // very high to force refractory hits
		cfg.RefractoryUS = refr
		sim, err := New(cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		evs, err := sim.Events(0, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		return len(evs)
	}
	free := mk(0)
	limited := mk(10_000)
	if limited >= free {
		t.Errorf("refractory period should reduce event count: %d vs %d", limited, free)
	}
	// With a 10 ms refractory over a 20 ms window, each pixel can fire at
	// most twice.
	if limited > events.DAVIS240.Pixels()*2 {
		t.Errorf("refractory cap violated: %d events", limited)
	}
}

func TestOcclusionSuppressesFarObject(t *testing.T) {
	// Near bus fully covers far car: car pixels must not fire in the
	// overlap region.
	sc := &scene.Scene{
		Res: events.DAVIS240, DurationUS: 2_000_000,
		Objects: []scene.Object{
			{ID: 0, Kind: scene.KindCar, W: 20, H: 10, LaneY: 60, X0: 100, VX: 30, EnterUS: 0, ExitUS: 2_000_000, Z: 1, EdgeDensity: 0.9, InteriorDensity: 0.5},
			{ID: 1, Kind: scene.KindBus, W: 80, H: 40, LaneY: 50, X0: 70, VX: 30, EnterUS: 0, ExitUS: 2_000_000, Z: 2, EdgeDensity: 0, InteriorDensity: 0},
		},
	}
	sim, err := New(quietConfig(13), sc)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := sim.Events(0, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	// The bus generates nothing (zero densities) and hides the car, so the
	// stream must be empty.
	if len(evs) != 0 {
		t.Errorf("occluded object leaked %d events", len(evs))
	}
}

func TestDistractorEvents(t *testing.T) {
	sc := &scene.Scene{
		Res:        events.DAVIS240,
		DurationUS: 1_000_000,
		Distractors: []scene.Distractor{
			{Box: geometry.NewBox(10, 150, 40, 20), RatePerPixelHz: 50},
		},
	}
	cfg := quietConfig(17)
	sim, err := New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := sim.Events(0, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("distractor generated no events")
	}
	for _, e := range evs {
		if !sc.Distractors[0].Box.Contains(int(e.X), int(e.Y)) {
			t.Fatalf("distractor event outside its box: %v", e)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	sc := scene.SingleObjectScene(events.DAVIS240, 1_000_000)
	cfg := DefaultConfig(1)
	cfg.NoiseRatePerPixelHz = -1
	if _, err := New(cfg, sc); err == nil {
		t.Error("negative noise rate should error")
	}
	// Zero resolution defaults to DAVIS240.
	cfg = Config{Seed: 1}
	sim, err := New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Resolution() != events.DAVIS240 {
		t.Errorf("default resolution = %v", sim.Resolution())
	}
}

func TestLatch(t *testing.T) {
	l := NewLatch(events.Resolution{A: 4, B: 3})
	l.Accumulate([]events.Event{
		{X: 0, Y: 0, T: 1, P: events.On},
		{X: 0, Y: 0, T: 2, P: events.Off}, // same pixel, still one bit
		{X: 3, Y: 2, T: 3, P: events.On},
		{X: 9, Y: 9, T: 4, P: events.On}, // out of range, ignored
	})
	if l.SetCount() != 2 {
		t.Errorf("SetCount = %d, want 2", l.SetCount())
	}
	dst := make([]uint8, 12)
	n := l.ReadOut(dst)
	if n != 2 {
		t.Errorf("ReadOut count = %d, want 2", n)
	}
	if dst[0] != 1 || dst[2*4+3] != 1 {
		t.Error("latched pixels missing from readout")
	}
	if l.SetCount() != 0 {
		t.Error("readout must reset the latch")
	}
}

func TestHumanSlowObjectFewEvents(t *testing.T) {
	// The paper notes humans need longer exposure: a slow walker generates
	// far fewer events per frame than a car. Verify the rate ordering.
	mk := func(kind scene.Kind, w, h int, vx float64, interior float64) int {
		sc := &scene.Scene{
			Res: events.DAVIS240, DurationUS: 2_000_000,
			Objects: []scene.Object{{
				ID: 0, Kind: kind, W: w, H: h, LaneY: 60, X0: 50, VX: vx,
				EnterUS: 0, ExitUS: 2_000_000, Z: 1,
				EdgeDensity: 0.8, InteriorDensity: interior,
			}},
		}
		sim, err := New(quietConfig(21), sc)
		if err != nil {
			t.Fatal(err)
		}
		evs, err := sim.Events(0, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return len(evs)
	}
	human := mk(scene.KindHuman, 7, 15, 8, 0.25)
	car := mk(scene.KindCar, 32, 18, 70, 0.18)
	if human*5 > car {
		t.Errorf("human events (%d) should be far fewer than car events (%d)", human, car)
	}
}
