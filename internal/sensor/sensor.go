// Package sensor implements a behavioural simulator for a DAVIS-class
// neuromorphic vision sensor observing a scene.Scene.
//
// The paper's hardware (a 240x180 DAVIS at a traffic junction) is replaced
// by a model that reproduces the properties every stage of the EBBIOT
// pipeline depends on:
//
//   - change-detection events: a pixel fires only when the local contrast
//     changes, so moving edges fire strongly, flat object interiors fire
//     weakly (object fragmentation), and the static background is silent;
//   - ON/OFF polarity: leading edges of a bright-on-dark object fire ON,
//     trailing edges OFF;
//   - background-activity noise: every pixel fires spurious events as a
//     Poisson process, the salt-and-pepper noise the median / NN filters
//     must remove;
//   - a per-pixel refractory period bounding the event rate;
//   - latched readout: a pixel that has fired is not reset until it is read
//     out, so the array itself stores an event-based binary image between
//     processor interrupts (the "sensor as memory" trick of Section II-A).
//
// Determinism: all randomness comes from the seeded xrand generator in the
// config, so a (scene, config) pair always yields the identical event
// stream.
package sensor

import (
	"fmt"

	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/scene"
	"ebbiot/internal/xrand"
)

// Config parameterises the sensor model.
type Config struct {
	// Res is the array resolution; defaults to DAVIS240 when zero.
	Res events.Resolution
	// NoiseRatePerPixelHz is the background-activity rate per pixel. Real
	// DAVIS BA noise at indoor bias settings is around 0.1-2 Hz/pixel.
	NoiseRatePerPixelHz float64
	// RefractoryUS suppresses a pixel's events for this long after each
	// fired event (0 disables).
	RefractoryUS int64
	// TickUS is the simulation step; object motion is piecewise-constant
	// within a tick. Must be small relative to the frame period so edges
	// sweep smoothly; 1000 us default.
	TickUS int64
	// Seed drives the deterministic RNG.
	Seed uint64
}

// DefaultConfig returns the configuration used by the dataset presets:
// 1 ms ticks, 1 Hz/pixel background activity and a 300 us refractory
// period on a DAVIS240 array.
func DefaultConfig(seed uint64) Config {
	return Config{
		Res:                 events.DAVIS240,
		NoiseRatePerPixelHz: 1.0,
		RefractoryUS:        300,
		TickUS:              1000,
		Seed:                seed,
	}
}

func (c *Config) normalize() error {
	if c.Res.A == 0 && c.Res.B == 0 {
		c.Res = events.DAVIS240
	}
	if err := c.Res.Validate(); err != nil {
		return err
	}
	if c.TickUS <= 0 {
		c.TickUS = 1000
	}
	if c.NoiseRatePerPixelHz < 0 {
		return fmt.Errorf("sensor: negative noise rate %v", c.NoiseRatePerPixelHz)
	}
	return nil
}

// Simulator produces the event stream a DAVIS would emit while watching the
// scene. It is stateful: successive calls to Events must use contiguous,
// forward-moving windows.
type Simulator struct {
	cfg Config
	sc  *scene.Scene
	rng *xrand.Rand
	// lastFire[pixel] is the timestamp of the pixel's last event, for the
	// refractory model. Initialised to a large negative value.
	lastFire []int64
	// cursor is the end of the last generated window.
	cursor int64
}

// New constructs a simulator for the given scene.
func New(cfg Config, sc *scene.Scene) (*Simulator, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	lf := make([]int64, cfg.Res.Pixels())
	for i := range lf {
		lf[i] = -1 << 40
	}
	return &Simulator{cfg: cfg, sc: sc, rng: xrand.New(cfg.Seed), lastFire: lf}, nil
}

// Resolution returns the sensor array resolution.
func (s *Simulator) Resolution() events.Resolution { return s.cfg.Res }

// Cursor returns the end timestamp of the last generated window.
func (s *Simulator) Cursor() int64 { return s.cursor }

// Events generates the sorted event stream for the window [t0, t1). t0 must
// equal the current cursor (windows are contiguous) and t1 > t0.
func (s *Simulator) Events(t0, t1 int64) ([]events.Event, error) {
	return s.EventsInto(nil, t0, t1)
}

// EventsInto is Events appending into a caller-owned buffer, so streaming
// pipelines can recycle one window buffer instead of allocating per frame.
// Only the appended region is sorted and refractory-filtered; the extended
// slice is returned.
func (s *Simulator) EventsInto(buf []events.Event, t0, t1 int64) ([]events.Event, error) {
	if t0 != s.cursor {
		return buf, fmt.Errorf("sensor: non-contiguous window start %d, cursor at %d", t0, s.cursor)
	}
	if t1 <= t0 {
		return buf, fmt.Errorf("sensor: empty window [%d,%d)", t0, t1)
	}
	base := len(buf)
	out := buf
	for tick := t0; tick < t1; tick += s.cfg.TickUS {
		tickEnd := tick + s.cfg.TickUS
		if tickEnd > t1 {
			tickEnd = t1
		}
		out = s.tick(out, tick, tickEnd)
	}
	events.SortByTime(out[base:])
	kept := s.applyRefractory(out[base:])
	s.cursor = t1
	return out[:base+len(kept)], nil
}

// tick appends this tick's candidate events (before refractory filtering).
func (s *Simulator) tick(out []events.Event, t0, t1 int64) []events.Event {
	dtSec := float64(t1-t0) / 1e6
	states := s.sc.At(t0)
	bounds := geometry.NewBox(0, 0, s.cfg.Res.A, s.cfg.Res.B)

	// Moving objects, far to near; collect near-object masks for occlusion.
	nearBoxes := make([]geometry.Box, len(states))
	for i, st := range states {
		nearBoxes[i] = st.Box.Round()
	}
	for i, st := range states {
		out = s.objectEvents(out, st, nearBoxes[i+1:], bounds, t0, t1, dtSec)
	}

	// Distractor clutter.
	for _, d := range s.sc.Distractors {
		box := d.Box.Clamp(bounds)
		if box.Empty() || d.RatePerPixelHz <= 0 {
			continue
		}
		mean := d.RatePerPixelHz * float64(box.Area()) * dtSec
		n := s.rng.Poisson(mean)
		for k := 0; k < n; k++ {
			out = append(out, s.randomEventIn(box, t0, t1))
		}
	}

	// Background-activity noise over the whole array.
	if s.cfg.NoiseRatePerPixelHz > 0 {
		mean := s.cfg.NoiseRatePerPixelHz * float64(s.cfg.Res.Pixels()) * dtSec
		n := s.rng.Poisson(mean)
		for k := 0; k < n; k++ {
			out = append(out, s.randomEventIn(bounds, t0, t1))
		}
	}
	return out
}

// objectEvents emits the events one moving object produces in a tick:
// strong responses on its leading and trailing vertical edges and on the
// horizontal outline, weak texture events in the interior. occluders are
// the boxes of nearer objects whose pixels mask this object.
func (s *Simulator) objectEvents(out []events.Event, st scene.State, occluders []geometry.Box, bounds geometry.Box, t0, t1 int64, dtSec float64) []events.Event {
	box := st.Box.Round().Clamp(bounds)
	if box.Empty() {
		return out
	}
	speed := st.VX
	if speed < 0 {
		speed = -speed
	}
	motionPx := speed * dtSec // pixels of motion this tick
	if motionPx <= 0 {
		return out
	}

	occluded := func(x, y int) bool {
		for _, ob := range occluders {
			if ob.Contains(x, y) {
				return true
			}
		}
		return false
	}

	emit := func(x, y int, p events.Polarity) {
		if !bounds.Contains(x, y) || occluded(x, y) {
			return
		}
		t := t0 + int64(s.rng.Float64()*float64(t1-t0))
		out = append(out, events.Event{X: int16(x), Y: int16(y), T: t, P: p})
	}

	// Leading and trailing vertical edges. For rightward motion the right
	// edge is leading (ON for a bright object entering dark background) and
	// the left edge trailing (OFF).
	leadX, trailX := box.MaxX()-1, box.X
	leadP, trailP := events.On, events.Off
	if st.VX < 0 {
		leadX, trailX = box.X, box.MaxX()-1
		// Polarity semantics stay with the edge role, not the side.
	}
	pEdge := st.EdgeDensity * motionPx
	for y := box.Y; y < box.MaxY(); y++ {
		if s.rng.Bool(clampProb(pEdge)) {
			emit(leadX, y, leadP)
		}
		if s.rng.Bool(clampProb(pEdge)) {
			emit(trailX, y, trailP)
		}
	}
	// Horizontal outline (top and bottom edges) fires at a reduced rate —
	// contrast changes there only where the outline is not parallel to the
	// motion, so scale by half.
	pOutline := clampProb(0.5 * st.EdgeDensity * motionPx)
	for x := box.X; x < box.MaxX(); x++ {
		if s.rng.Bool(pOutline) {
			emit(x, box.MaxY()-1, randomPolarity(s.rng))
		}
		if s.rng.Bool(pOutline) {
			emit(x, box.Y, randomPolarity(s.rng))
		}
	}
	// Interior texture: each interior pixel fires with probability
	// InteriorDensity per pixel of motion. Large flat-sided vehicles have
	// low densities, producing the fragmented binary images of Fig. 3.
	pInt := clampProb(st.InteriorDensity * motionPx)
	if pInt > 0 {
		for y := box.Y + 1; y < box.MaxY()-1; y++ {
			for x := box.X + 1; x < box.MaxX()-1; x++ {
				if s.rng.Bool(pInt) {
					emit(x, y, randomPolarity(s.rng))
				}
			}
		}
	}
	return out
}

func clampProb(p float64) float64 {
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

func randomPolarity(r *xrand.Rand) events.Polarity {
	if r.Bool(0.5) {
		return events.On
	}
	return events.Off
}

// randomEventIn returns a uniformly placed event within the box and window.
func (s *Simulator) randomEventIn(box geometry.Box, t0, t1 int64) events.Event {
	x := box.X + s.rng.Intn(box.W)
	y := box.Y + s.rng.Intn(box.H)
	t := t0 + int64(s.rng.Float64()*float64(t1-t0))
	return events.Event{X: int16(x), Y: int16(y), T: t, P: randomPolarity(s.rng)}
}

// applyRefractory drops events that arrive within the refractory period of
// the same pixel's previous event, mutating lastFire. The input must be
// sorted by time; filtering is done in place.
func (s *Simulator) applyRefractory(evs []events.Event) []events.Event {
	if s.cfg.RefractoryUS <= 0 {
		return evs
	}
	out := evs[:0]
	for _, e := range evs {
		idx := int(e.Y)*s.cfg.Res.A + int(e.X)
		if e.T-s.lastFire[idx] < s.cfg.RefractoryUS {
			continue
		}
		s.lastFire[idx] = e.T
		out = append(out, e)
	}
	return out
}

// Latch models the sensor's no-reset-until-readout behaviour: events
// accumulate as set bits in the pixel array while the processor sleeps, and
// a readout returns the binary image and clears it. This is the mechanism
// that lets EBBIOT reuse the sensor as its frame memory.
type Latch struct {
	// bits is the latched binary state, row major.
	bits []uint8
	res  events.Resolution
}

// NewLatch returns an empty latch for the given resolution.
func NewLatch(res events.Resolution) *Latch {
	return &Latch{bits: make([]uint8, res.Pixels()), res: res}
}

// Accumulate latches every event's pixel. Polarity is ignored: the EBBI is
// binary (Section II-A).
func (l *Latch) Accumulate(evs []events.Event) {
	for _, e := range evs {
		if l.res.Contains(int(e.X), int(e.Y)) {
			l.bits[int(e.Y)*l.res.A+int(e.X)] = 1
		}
	}
}

// ReadOut copies the latched image into dst (a slice of length A*B, row
// major) and resets the latch, mirroring the destructive readout of the
// sensor array. It returns the number of set pixels.
func (l *Latch) ReadOut(dst []uint8) int {
	n := 0
	for i, b := range l.bits {
		dst[i] = b
		if b != 0 {
			n++
		}
		l.bits[i] = 0
	}
	return n
}

// SetCount returns the number of currently latched pixels without resetting.
func (l *Latch) SetCount() int {
	n := 0
	for _, b := range l.bits {
		if b != 0 {
			n++
		}
	}
	return n
}
