package eval

import (
	"reflect"
	"testing"

	"ebbiot/internal/core"
	"ebbiot/internal/dataset"
	"ebbiot/internal/events"
	"ebbiot/internal/metrics"
	"ebbiot/internal/roe"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

func TestRunProducesSamples(t *testing.T) {
	sc := scene.SingleObjectScene(events.DAVIS240, 2_000_000)
	cfg := sensor.DefaultConfig(1)
	sim, err := sensor.New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	samples, err := Run(sys, sc, sim, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := int(2_000_000/opt.FrameUS) - opt.WarmupFrames
	if len(samples) != wantFrames {
		t.Errorf("samples = %d, want %d", len(samples), wantFrames)
	}
}

func TestRunValidation(t *testing.T) {
	sc := scene.SingleObjectScene(events.DAVIS240, 1_000_000)
	sim, err := sensor.New(sensor.DefaultConfig(1), sc)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.FrameUS = 0
	if _, err := Run(sys, sc, sim, opt); err == nil {
		t.Error("zero frame duration should error")
	}
}

func TestEBBIOTScoresWellOnCleanScene(t *testing.T) {
	sc := scene.SingleObjectScene(events.DAVIS240, 4_000_000)
	cfg := sensor.DefaultConfig(5)
	cfg.NoiseRatePerPixelHz = 0.5
	sim, err := sensor.New(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples, err := Run(sys, sc, sim, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := metrics.Evaluate(samples, 0.3)
	if c.Precision() < 0.8 {
		t.Errorf("precision@0.3 = %.2f, want >= 0.8", c.Precision())
	}
	if c.Recall() < 0.8 {
		t.Errorf("recall@0.3 = %.2f, want >= 0.8", c.Recall())
	}
}

func TestCompareSystemsShape(t *testing.T) {
	// The Fig. 4 headline shape on a small replica: EBBIOT's F1 at the
	// central 0.5 threshold must beat both baselines.
	if testing.Short() {
		t.Skip("multi-system comparison is slow")
	}
	mask := roe.New(dataset.TreeROEENG())
	factories := map[string]SystemFactory{
		"EBBIOT": func() (core.System, error) {
			return core.NewEBBIOT(core.DefaultConfig().WithROE(mask))
		},
		"EBBI+KF": func() (core.System, error) {
			cfg := core.DefaultKFConfig()
			cfg.ROE = mask
			return core.NewEBBIKF(cfg)
		},
		"EBMS": func() (core.System, error) {
			cfg := core.DefaultEBMSConfig()
			cfg.ROE = mask
			return core.NewEBMS(cfg)
		},
	}
	recs := []RecordingSpec{
		{Name: "ENG", Preset: dataset.ENG, Scale: 25.0 / 2998.4, Seed: 11},
		{Name: "LT4", Preset: dataset.LT4, Scale: 25.0 / 999.5, Seed: 13},
	}
	results, err := CompareSystems(factories, recs, metrics.DefaultThresholds(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	f1At := func(r CompareResult, th float64) float64 {
		for _, p := range r.Points {
			if p.IoUThreshold == th {
				if p.Precision+p.Recall == 0 {
					return 0
				}
				return 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
			}
		}
		t.Fatalf("threshold %v missing from %s", th, r.System)
		return 0
	}
	byName := map[string]CompareResult{}
	for _, r := range results {
		byName[r.System] = r
	}
	ebbiot := f1At(byName["EBBIOT"], 0.5)
	kf := f1At(byName["EBBI+KF"], 0.5)
	ms := f1At(byName["EBMS"], 0.5)
	t.Logf("F1@0.5: EBBIOT=%.3f EBBI+KF=%.3f EBMS=%.3f", ebbiot, kf, ms)
	if ebbiot < ms {
		t.Errorf("EBBIOT F1 (%.3f) should beat EBMS (%.3f)", ebbiot, ms)
	}
	if ebbiot < kf-0.02 {
		t.Errorf("EBBIOT F1 (%.3f) should be at least on par with KF (%.3f)", ebbiot, kf)
	}
	// Per-recording results must be present with positive weights.
	for _, r := range results {
		if len(r.PerRecording) != 2 {
			t.Errorf("%s has %d per-recording entries", r.System, len(r.PerRecording))
		}
		for _, pr := range r.PerRecording {
			if pr.TrackWeight <= 0 {
				t.Errorf("%s/%s has zero track weight", r.System, pr.Name)
			}
		}
	}
}

func TestCompareSystemsValidation(t *testing.T) {
	if _, err := CompareSystems(nil, nil, nil, DefaultOptions()); err == nil {
		t.Error("empty comparison should error")
	}
}

func TestCompareSystemsDeterministicAcrossWorkers(t *testing.T) {
	// Sharding the (system, recording) grid across pipeline workers must not
	// change any score: each cell owns its recording replica and system.
	factories := map[string]SystemFactory{
		"EBBIOT": func() (core.System, error) {
			return core.NewEBBIOT(core.DefaultConfig())
		},
		"EBMS": func() (core.System, error) {
			return core.NewEBMS(core.DefaultEBMSConfig())
		},
	}
	recs := []RecordingSpec{
		{Name: "ENG", Preset: dataset.ENG, Scale: 6.0 / 2998.4, Seed: 11},
		{Name: "LT4", Preset: dataset.LT4, Scale: 6.0 / 999.5, Seed: 13},
	}
	run := func(workers int) []CompareResult {
		opt := DefaultOptions()
		opt.Workers = workers
		results, err := CompareSystems(factories, recs, metrics.DefaultThresholds(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	want := run(1)
	for _, workers := range []int{4, 0} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results differ from sequential run", workers)
		}
	}
}
