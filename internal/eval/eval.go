// Package eval runs tracking systems over synthetic recordings and scores
// them against exact ground truth, reproducing the evaluation protocol of
// Section III: boxes are sampled at every frame boundary, matched by IoU
// threshold, and precision/recall are accumulated per recording then
// combined across recordings weighted by ground-truth track count.
package eval

import (
	"fmt"

	"ebbiot/internal/core"
	"ebbiot/internal/dataset"
	"ebbiot/internal/geometry"
	"ebbiot/internal/metrics"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

// Options configures a run.
type Options struct {
	// FrameUS is the frame period tF (66 ms default).
	FrameUS int64
	// MinVisiblePixels is the ground-truth visibility cutoff (an object
	// whose on-screen visible area is below this is not annotated).
	MinVisiblePixels int
	// WarmupFrames excludes the first frames from scoring while trackers
	// initialise; the paper's long recordings make its warm-up negligible,
	// ours are short.
	WarmupFrames int
}

// DefaultOptions returns the paper's evaluation parameters.
func DefaultOptions() Options {
	return Options{FrameUS: 66_000, MinVisiblePixels: 40, WarmupFrames: 5}
}

// Run streams a recording's events through the system frame by frame and
// collects one FrameSample per frame boundary.
func Run(sys core.System, sc *scene.Scene, sim *sensor.Simulator, opt Options) ([]metrics.FrameSample, error) {
	if opt.FrameUS <= 0 {
		return nil, fmt.Errorf("eval: frame duration must be positive")
	}
	var samples []metrics.FrameSample
	frame := 0
	for cursor := int64(0); cursor+opt.FrameUS <= sc.DurationUS; cursor += opt.FrameUS {
		evs, err := sim.Events(cursor, cursor+opt.FrameUS)
		if err != nil {
			return nil, fmt.Errorf("eval: sensor window: %w", err)
		}
		boxes, err := sys.ProcessWindow(evs)
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", sys.Name(), err)
		}
		frame++
		if frame <= opt.WarmupFrames {
			continue
		}
		gt := sc.GroundTruth(cursor+opt.FrameUS, opt.MinVisiblePixels)
		gtBoxes := make([]geometry.Box, len(gt))
		for i, g := range gt {
			gtBoxes[i] = g.Box
		}
		samples = append(samples, metrics.FrameSample{Tracker: boxes, GroundTruth: gtBoxes})
	}
	return samples, nil
}

// SystemFactory builds a fresh pipeline for each recording (systems are
// stateful, so each recording needs its own instance).
type SystemFactory func() (core.System, error)

// RecordingSpec pairs a name with generation inputs.
type RecordingSpec struct {
	Name   string
	Preset dataset.Preset
	// Scale shrinks the recording duration (1.0 = full Table I length).
	Scale float64
	Seed  uint64
}

// CompareResult is one system's weighted-average curve (the Fig. 4 data).
type CompareResult struct {
	System string
	Points []metrics.Point
	// PerRecording retains the unweighted per-recording curves.
	PerRecording []metrics.RecordingResult
}

// CompareSystems evaluates each system factory over each recording and
// returns the per-system weighted-average precision/recall curves of
// Fig. 4.
func CompareSystems(factories map[string]SystemFactory, recs []RecordingSpec, thresholds []float64, opt Options) ([]CompareResult, error) {
	if len(factories) == 0 || len(recs) == 0 {
		return nil, fmt.Errorf("eval: nothing to compare")
	}
	var out []CompareResult
	for _, name := range sortedKeys(factories) {
		factory := factories[name]
		var perRec []metrics.RecordingResult
		for _, rspec := range recs {
			spec, err := dataset.For(rspec.Preset, rspec.Scale, rspec.Seed)
			if err != nil {
				return nil, fmt.Errorf("eval: preset %v: %w", rspec.Preset, err)
			}
			rec, err := dataset.Generate(spec)
			if err != nil {
				return nil, fmt.Errorf("eval: generating %s: %w", rspec.Name, err)
			}
			sys, err := factory()
			if err != nil {
				return nil, fmt.Errorf("eval: building %s: %w", name, err)
			}
			samples, err := Run(sys, rec.Scene, rec.Sim, opt)
			if err != nil {
				return nil, err
			}
			perRec = append(perRec, metrics.RecordingResult{
				Name:        rspec.Name,
				Points:      metrics.Sweep(samples, thresholds),
				TrackWeight: rec.Scene.TrackCount(),
			})
		}
		avg, err := metrics.WeightedAverage(perRec)
		if err != nil {
			return nil, fmt.Errorf("eval: averaging %s: %w", name, err)
		}
		out = append(out, CompareResult{System: name, Points: avg, PerRecording: perRec})
	}
	return out, nil
}

func sortedKeys(m map[string]SystemFactory) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
