// Package eval runs tracking systems over synthetic recordings and scores
// them against exact ground truth, reproducing the evaluation protocol of
// Section III: boxes are sampled at every frame boundary, matched by IoU
// threshold, and precision/recall are accumulated per recording then
// combined across recordings weighted by ground-truth track count.
//
// Windowing and system driving are delegated to the streaming pipeline
// runtime; CompareSystems shards its (system, recording) grid across worker
// goroutines via pipeline.Runner, with per-cell results independent of the
// worker count.
package eval

import (
	"context"
	"fmt"

	"ebbiot/internal/core"
	"ebbiot/internal/dataset"
	"ebbiot/internal/geometry"
	"ebbiot/internal/metrics"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
)

// Options configures a run.
type Options struct {
	// FrameUS is the frame period tF (66 ms default).
	FrameUS int64
	// MinVisiblePixels is the ground-truth visibility cutoff (an object
	// whose on-screen visible area is below this is not annotated).
	MinVisiblePixels int
	// WarmupFrames excludes the first frames from scoring while trackers
	// initialise; the paper's long recordings make its warm-up negligible,
	// ours are short.
	WarmupFrames int
	// Workers caps the concurrent (system, recording) evaluations in
	// CompareSystems; 0 means one per CPU. Results are identical for every
	// value.
	Workers int
}

// DefaultOptions returns the paper's evaluation parameters.
func DefaultOptions() Options {
	return Options{FrameUS: 66_000, MinVisiblePixels: 40, WarmupFrames: 5}
}

// scoringObserver appends one scored FrameSample per post-warmup window.
func scoringObserver(sc *scene.Scene, opt Options, samples *[]metrics.FrameSample) pipeline.Observer {
	return func(snap pipeline.TrackSnapshot, _ core.System) error {
		if snap.Frame < opt.WarmupFrames {
			return nil
		}
		gt := sc.GroundTruth(snap.EndUS, opt.MinVisiblePixels)
		gtBoxes := make([]geometry.Box, len(gt))
		for i, g := range gt {
			gtBoxes[i] = g.Box
		}
		*samples = append(*samples, metrics.FrameSample{Tracker: snap.Boxes, GroundTruth: gtBoxes})
		return nil
	}
}

// Run streams a recording's events through the system frame by frame and
// collects one FrameSample per frame boundary.
func Run(sys core.System, sc *scene.Scene, sim *sensor.Simulator, opt Options) ([]metrics.FrameSample, error) {
	if opt.FrameUS <= 0 {
		return nil, fmt.Errorf("eval: frame duration must be positive")
	}
	src, err := pipeline.NewSceneSource(sim, sc.DurationUS)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	r, err := pipeline.NewRunner(pipeline.Config{FrameUS: opt.FrameUS, Workers: 1})
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	var samples []metrics.FrameSample
	stream := pipeline.Stream{
		Name:     sys.Name(),
		Source:   src,
		System:   sys,
		Observer: scoringObserver(sc, opt, &samples),
	}
	if _, err := r.Run(context.Background(), []pipeline.Stream{stream}, nil); err != nil {
		return nil, fmt.Errorf("eval: %s: %w", sys.Name(), err)
	}
	return samples, nil
}

// SystemFactory builds a fresh pipeline for each recording (systems are
// stateful, so each recording needs its own instance).
type SystemFactory func() (core.System, error)

// RecordingSpec pairs a name with generation inputs.
type RecordingSpec struct {
	Name   string
	Preset dataset.Preset
	// Scale shrinks the recording duration (1.0 = full Table I length).
	Scale float64
	Seed  uint64
}

// CompareResult is one system's weighted-average curve (the Fig. 4 data).
type CompareResult struct {
	System string
	Points []metrics.Point
	// PerRecording retains the unweighted per-recording curves.
	PerRecording []metrics.RecordingResult
}

// CompareSystems evaluates each system factory over each recording and
// returns the per-system weighted-average precision/recall curves of
// Fig. 4. The (system, recording) grid is sharded across pipeline workers;
// each cell owns its generated recording and fresh system instance, so the
// scores are deterministic regardless of opt.Workers.
func CompareSystems(factories map[string]SystemFactory, recs []RecordingSpec, thresholds []float64, opt Options) ([]CompareResult, error) {
	if len(factories) == 0 || len(recs) == 0 {
		return nil, fmt.Errorf("eval: nothing to compare")
	}
	if opt.FrameUS <= 0 {
		return nil, fmt.Errorf("eval: frame duration must be positive")
	}
	names := sortedKeys(factories)

	// One stream per grid cell, each with its own recording replica and
	// system instance.
	type cell struct {
		sysName string
		rec     RecordingSpec
		track   int
		samples []metrics.FrameSample
	}
	cells := make([]cell, len(names)*len(recs))
	streams := make([]pipeline.Stream, 0, len(cells))
	for ni, name := range names {
		factory := factories[name]
		for ri, rspec := range recs {
			spec, err := dataset.For(rspec.Preset, rspec.Scale, rspec.Seed)
			if err != nil {
				return nil, fmt.Errorf("eval: preset %v: %w", rspec.Preset, err)
			}
			rec, err := dataset.Generate(spec)
			if err != nil {
				return nil, fmt.Errorf("eval: generating %s: %w", rspec.Name, err)
			}
			sys, err := factory()
			if err != nil {
				return nil, fmt.Errorf("eval: building %s: %w", name, err)
			}
			src, err := pipeline.NewSceneSource(rec.Sim, rec.Scene.DurationUS)
			if err != nil {
				return nil, fmt.Errorf("eval: %w", err)
			}
			c := &cells[ni*len(recs)+ri]
			c.sysName = name
			c.rec = rspec
			c.track = rec.Scene.TrackCount()
			streams = append(streams, pipeline.Stream{
				Name:     name + "/" + rspec.Name,
				Source:   src,
				System:   sys,
				Observer: scoringObserver(rec.Scene, opt, &c.samples),
			})
		}
	}

	r, err := pipeline.NewRunner(pipeline.Config{FrameUS: opt.FrameUS, Workers: opt.Workers})
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	if _, err := r.Run(context.Background(), streams, nil); err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	// The grid's systems are ours and fully consumed: release their EBBI
	// buffers so the bitmap pool recycles across cells and repeated sweeps.
	for i := range streams {
		if c, ok := streams[i].System.(interface{ Close() }); ok {
			c.Close()
		}
	}

	var out []CompareResult
	for i, name := range names {
		perRec := make([]metrics.RecordingResult, 0, len(recs))
		for j := range recs {
			c := cells[i*len(recs)+j]
			perRec = append(perRec, metrics.RecordingResult{
				Name:        c.rec.Name,
				Points:      metrics.Sweep(c.samples, thresholds),
				TrackWeight: c.track,
			})
		}
		avg, err := metrics.WeightedAverage(perRec)
		if err != nil {
			return nil, fmt.Errorf("eval: averaging %s: %w", name, err)
		}
		out = append(out, CompareResult{System: name, Points: avg, PerRecording: perRec})
	}
	return out, nil
}

func sortedKeys(m map[string]SystemFactory) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
