// Package integration_test exercises whole-system paths across module
// boundaries: dataset generation -> AEDAT serialisation -> streaming replay
// -> tracking -> evaluation, verifying that the file-based path is
// behaviourally identical to the in-memory path.
package integration_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"ebbiot/internal/aedat"
	"ebbiot/internal/annot"
	"ebbiot/internal/core"
	"ebbiot/internal/dataset"
	"ebbiot/internal/events"
	"ebbiot/internal/geometry"
	"ebbiot/internal/metrics"
	"ebbiot/internal/roe"
	"ebbiot/internal/scene"
)

const frameUS = 66_000

// generate returns a 5-second LT4-style recording's full event stream and
// its scene.
func generate(t *testing.T) (*scene.Scene, []events.Event) {
	t.Helper()
	spec, err := dataset.For(dataset.LT4, 5.0/999.5, 77)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var all []events.Event
	for cursor := int64(0); cursor+frameUS <= spec.DurationUS; cursor += frameUS {
		evs, err := rec.Sim.Events(cursor, cursor+frameUS)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, evs...)
	}
	return rec.Scene, all
}

// trackDirect runs EBBIOT over in-memory windows.
func trackDirect(t *testing.T, evs []events.Event) [][]geometry.Box {
	t.Helper()
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := events.Windows(evs, frameUS)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]geometry.Box
	for _, w := range ws {
		boxes, err := sys.ProcessWindow(w.Events)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, boxes)
	}
	return out
}

// trackViaAEDAT serialises the stream to the AEDAT container and replays it
// through the streaming reader's NextWindow, as cmd/ebbiot-run does.
func trackViaAEDAT(t *testing.T, evs []events.Event) [][]geometry.Box {
	t.Helper()
	var buf bytes.Buffer
	if err := aedat.Write(&buf, events.DAVIS240, evs); err != nil {
		t.Fatal(err)
	}
	r, err := aedat.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var out [][]geometry.Box
	frame := 0
	for {
		end := int64(frame+1) * frameUS
		wevs, werr := r.NextWindow(end)
		boxes, perr := sys.ProcessWindow(wevs)
		if perr != nil {
			t.Fatal(perr)
		}
		out = append(out, boxes)
		frame++
		if werr != nil {
			if errors.Is(werr, io.EOF) {
				break
			}
			t.Fatal(werr)
		}
	}
	return out
}

func TestAEDATReplayMatchesDirectTracking(t *testing.T) {
	_, evs := generate(t)
	direct := trackDirect(t, evs)
	replay := trackViaAEDAT(t, evs)
	// The replay path may emit one extra (possibly empty) trailing frame at
	// EOF; compare the common prefix and require it covers the direct run.
	if len(replay) < len(direct) {
		t.Fatalf("replay produced fewer frames: %d vs %d", len(replay), len(direct))
	}
	for i := range direct {
		if len(direct[i]) != len(replay[i]) {
			t.Fatalf("frame %d: %d boxes direct vs %d via AEDAT", i, len(direct[i]), len(replay[i]))
		}
		for j := range direct[i] {
			if direct[i][j] != replay[i][j] {
				t.Fatalf("frame %d box %d: %v direct vs %v via AEDAT", i, j, direct[i][j], replay[i][j])
			}
		}
	}
}

func TestAnnotationsMatchSceneGroundTruth(t *testing.T) {
	sc, _ := generate(t)
	recs, err := annot.FromScene(sc, frameUS, 40)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := annot.Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := annot.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check one sampling instant against the live scene.
	tUS := int64(10) * frameUS
	want := sc.GroundTruth(tUS, 40)
	got := annot.AtTime(back, tUS)
	if len(got) != len(want) {
		t.Fatalf("at t=%d: %d annotated vs %d live boxes", tUS, len(got), len(want))
	}
	for i := range want {
		if got[i].Box != want[i].Box || got[i].ID != want[i].ID {
			t.Errorf("record %d: %+v vs live %+v", i, got[i], want[i])
		}
	}
}

func TestFullPipelineAgainstAnnotations(t *testing.T) {
	// End to end: evaluate EBBIOT against file-based annotations instead of
	// the live scene, as an external user with only the .aer + .csv pair
	// would.
	sc, evs := generate(t)
	recs, err := annot.FromScene(sc, frameUS, 40)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewEBBIOT(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := events.Windows(evs, frameUS)
	if err != nil {
		t.Fatal(err)
	}
	var samples []metrics.FrameSample
	for i, w := range ws {
		boxes, err := sys.ProcessWindow(w.Events)
		if err != nil {
			t.Fatal(err)
		}
		if i < 5 {
			continue // warm-up
		}
		gts := annot.AtTime(recs, w.End)
		gtBoxes := make([]geometry.Box, len(gts))
		for j, g := range gts {
			gtBoxes[j] = g.Box
		}
		samples = append(samples, metrics.FrameSample{Tracker: boxes, GroundTruth: gtBoxes})
	}
	c := metrics.Evaluate(samples, 0.3)
	if c.Precision() < 0.5 || c.Recall() < 0.5 {
		t.Errorf("file-based evaluation P=%.2f R=%.2f suspiciously low", c.Precision(), c.Recall())
	}
}

func TestROEConsistencyAcrossPipelines(t *testing.T) {
	// All three systems must accept and honour the same exclusion mask:
	// no reported box may be mostly inside the ROE.
	mask := roe.New(dataset.TreeROEENG())
	spec, err := dataset.For(dataset.ENG, 5.0/2998.4, 99)
	if err != nil {
		t.Fatal(err)
	}
	build := map[string]func() (core.System, error){
		"EBBIOT": func() (core.System, error) {
			return core.NewEBBIOT(core.DefaultConfig().WithROE(mask))
		},
		"EBBI+KF": func() (core.System, error) {
			cfg := core.DefaultKFConfig()
			cfg.ROE = mask
			return core.NewEBBIKF(cfg)
		},
		"EBMS": func() (core.System, error) {
			cfg := core.DefaultEBMSConfig()
			cfg.ROE = mask
			return core.NewEBMS(cfg)
		},
	}
	for name, factory := range build {
		rec, err := dataset.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := factory()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for cursor := int64(0); cursor+frameUS <= spec.DurationUS; cursor += frameUS {
			evs, err := rec.Sim.Events(cursor, cursor+frameUS)
			if err != nil {
				t.Fatal(err)
			}
			boxes, err := sys.ProcessWindow(evs)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, b := range boxes {
				if mask.Excluded(b, 0.5) {
					t.Errorf("%s reported box %v inside the ROE", name, b)
				}
			}
		}
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	// The entire chain — generation, simulation, tracking — must be
	// reproducible bit for bit across runs with the same seeds.
	run := func() [][]geometry.Box {
		_, evs := generate(t)
		return trackDirect(t, evs)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("frame counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("frame %d box counts differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("frame %d box %d differs: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}
