// Command ebbiot-resources prints the paper's analytic resource models
// (Eqs. 1-8) and the Fig. 5 comparison of total computes and memory across
// the three pipelines.
//
// Usage:
//
//	ebbiot-resources
package main

import (
	"fmt"
	"os"

	"ebbiot/internal/resources"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-resources:", err)
		os.Exit(1)
	}
}

func run() error {
	p := resources.PaperDefaults()
	ot := resources.DefaultOTParams()

	fmt.Println("# Per-block models (Section II)")
	fmt.Printf("Eq.1 C_EBBI    = %8.1f kops/frame   M_EBBI    = %7.2f kB\n",
		p.EBBIComputes()/1000, p.EBBIMemoryBits()/8192)
	fmt.Printf("Eq.2 C_NN-filt = %8.1f kops/frame   M_NN-filt = %7.2f kB (%.0fx EBBI)\n",
		p.NNFiltComputes()/1000, p.NNFiltMemoryBits()/8192, p.NNFiltMemoryBits()/p.EBBIMemoryBits())
	fmt.Printf("Eq.5 C_RPN     = %8.1f kops/frame   M_RPN     = %7.2f kB\n",
		p.RPNComputes()/1000, p.RPNMemoryBits()/8192)
	fmt.Printf("Eq.6 C_OT      = %8.1f kops/frame   M_OT      = %7.2f kB\n",
		p.OTComputes(ot)/1000, p.OTMemoryBits()/8192)
	fmt.Printf("Eq.7 C_KF      = %8.1f kops/frame   M_KF      = %7.2f kB\n",
		p.KFComputesPaper()/1000, p.KFMemoryBitsPaper()/8192)
	fmt.Printf("Eq.8 C_EBMS    = %8.1f kops/frame   M_EBMS    = %7.2f kB\n",
		p.EBMSComputes()/1000, p.EBMSMemoryBits()/8192)

	cmp, err := p.Compare(ot)
	if err != nil {
		return err
	}
	fmt.Println("\n# Fig. 5 reproduction: pipeline totals relative to EBBIOT")
	fmt.Printf("%-10s %14s %12s %12s %10s\n", "pipeline", "computes(kops)", "memory(kB)", "rel.computes", "rel.memory")
	for i, b := range cmp.Budgets {
		fmt.Printf("%-10s %14.1f %12.2f %12.2f %10.2f\n",
			b.Pipeline, b.ComputesOps/1000, b.KBytes(), cmp.RelComputes[i], cmp.RelMemory[i])
	}

	cnn := resources.CNNRPNEstimate()
	fmt.Println("\n# CNN-RPN comparison (abstract's >1000x claim)")
	fmt.Printf("CNN detector floor: %.0f Mops/frame, %.0f MB\n", cnn.ComputesOps/1e6, cnn.MemoryBits/8192/1024)
	fmt.Printf("vs histogram RPN:   %.0fx computes, %.0fx memory\n",
		cnn.ComputesOps/p.RPNComputes(), cnn.MemoryBits/p.RPNMemoryBits())
	return nil
}
