package main

import (
	"strings"
	"testing"

	"ebbiot/internal/pipeline"
)

// TestPrintStreamOutcomes pins the exit-code discipline: every stream gets a
// terminal-state line in the final summary, and exactly the streams that
// ended failed are returned for the caller to turn into a nonzero exit.
func TestPrintStreamOutcomes(t *testing.T) {
	snap := pipeline.StatusSnapshot{PerStream: []pipeline.StreamSnapshot{
		{Name: "cam0", State: pipeline.StreamDone.String(), Windows: 12, Events: 3400},
		{Name: "cam1", State: pipeline.StreamFailed.String(), Windows: 3, Events: 80, Error: "ingest: torn frame"},
		{
			Name: "cam2", State: pipeline.StreamDone.String(), Windows: 12, Events: 3400,
			Stalls: 1, Restarts: 2,
			Source: &pipeline.SourceStats{Resumes: 1, Epoch: 2},
		},
	}}

	var buf strings.Builder
	failed := printStreamOutcomes(&buf, snap)

	if len(failed) != 1 || failed[0] != "cam1" {
		t.Fatalf("failed streams = %v, want [cam1]", failed)
	}
	out := buf.String()
	if got := strings.Count(out, "\n"); got != 3 {
		t.Fatalf("want one line per stream (3), got %d:\n%s", got, out)
	}
	for _, want := range []string{
		"stream cam0: done (12 windows, 3400 events)",
		"stream cam1: failed (3 windows, 80 events): ingest: torn frame",
		"stalls 1, restarts 2",
		"resumed 1 time(s), epoch 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestPrintStreamOutcomesAllDone: a clean run returns no failures.
func TestPrintStreamOutcomesAllDone(t *testing.T) {
	snap := pipeline.StatusSnapshot{PerStream: []pipeline.StreamSnapshot{
		{Name: "cam0", State: pipeline.StreamDone.String()},
		{Name: "cam1", State: pipeline.StreamDone.String()},
	}}
	if failed := printStreamOutcomes(&strings.Builder{}, snap); failed != nil {
		t.Fatalf("clean run reported failures: %v", failed)
	}
}
