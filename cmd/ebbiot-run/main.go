// Command ebbiot-run replays a recorded AER file (or synthesises a scene)
// through one of the three tracking pipelines via the streaming pipeline
// runtime and prints the per-frame track boxes (CSV to stdout, one row per
// box, with a sensor column).
//
// With -sensors N > 1 the recording is decoded once and replayed as N
// independent sensor streams sharded across -workers worker goroutines —
// each stream drives its own system instance — which exercises the
// multi-sensor Runner and measures aggregate throughput. A summary with
// events/s and windows/s is printed to stderr either way.
//
// With -http ADDR the run carries a live control plane: GET /healthz,
// /stats, /streams/{id} and Prometheus /metrics observe the run while it is
// in flight, and GET/PATCH /params reads and retunes the per-stream
// parameters (tF, RPN thresholds, tracker gating) live — changes land at
// the next window boundary with clean-restart semantics (see
// docs/CONTROL.md). With -pace the sources release windows at recorded
// wall-clock speed (scaled by -speed), so a replay behaves like a live
// deployment instead of finishing in milliseconds.
//
// The process shuts down gracefully on SIGINT/SIGTERM: streams stop at the
// next window, sinks are drained and flushed, and partial stats are printed
// instead of dying mid-write.
//
// With -store DIR every snapshot is additionally persisted into the
// embedded append-only snapshot store (internal/store), so the run can be
// interrogated later with ebbiot-query — scanned by sensor and time range
// or replayed in full. Each invocation records a new run into the
// directory (listed by `ebbiot-query list`), stamped with the parameter
// set's hash so recordings are attributable to their tuning.
// -store-segment-mb and -store-sync tune segment rotation and the fsync
// cadence; -store-retain-mb and -store-retain-age-h bound the directory by
// size and age, expiring whole old segments into tamper-evident manifest
// tombstones (see docs/STORE.md).
//
// The EBBI-based systems run the packed word-parallel frame kernels by
// default; -reference selects the byte-per-pixel cost-model path instead
// (identical tracking output, slower). The summary includes a per-stage
// timing breakdown (ebbi / filter / rpn / track / sink) so kernel
// before/after numbers are visible straight from the CLI.
//
// Two window-loop knobs ride on top: -skip-threshold arms the near-empty
// window fast path (windows with fewer in-array events bypass the median /
// proposal stages; the default -1 keeps the lossless bound floor(p^2/2)+1,
// 0 disables), with the skip count reported in the stage summary and as
// windows_skipped on /streams/{id} and /metrics; -batch N pulls N
// contiguous windows per stream iteration to amortize per-window dispatch,
// trading live-retune granularity and snapshot latency for throughput.
//
// With -listen ADDR the process becomes an `ebbiot-ingest` server instead
// of reading a local file: it accepts one framed-TCP sensor connection per
// stream ID named in -streams (see docs/INGEST.md for the wire format),
// authenticates them against -ingest-token, and applies per-stream
// backpressure through bounded batch queues whose drop policy is selected
// with -ingest-policy (block, drop-oldest, drop-newest). Queue drops,
// duplicate/reordered batches, sequence gaps and transport faults are
// per-stream counters on /streams/{id} and /metrics; by default a faulted
// sensor ends its own stream without taking down the rest of the fleet.
// Replay a recording into it with `ebbiot-gen -send` or any ingest.DialSink.
//
// Sensor sessions are resumable (wire v2): a dropped connection parks the
// stream in a grace window (-resume-grace-ms, 0 to disable) instead of
// faulting, and a reconnecting sensor replays from the last ACKed batch —
// the server acknowledges every -ack-every batches — with the session epoch
// bumped on /streams/{id} and /metrics. With -watchdog-ms N a stream that
// completes no window within N ms is flagged `stalled` (state and counter
// on /streams/{id}; it flips back to running on the next window). The final
// summary prints one outcome line per stream, and the process exits nonzero
// if any stream ended failed.
//
// Usage:
//
//	ebbiot-run -in eng.aer | -scene MS | -listen ADDR -streams cam0,cam1
//	           [-system EBBIOT|KF|EBMS] [-frame-ms 66]
//	           [-sensors N] [-workers M] [-stats stats.csv] [-json]
//	           [-store dir] [-store-segment-mb 64] [-store-sync 0]
//	           [-store-retain-mb 0] [-store-retain-age-h 0]
//	           [-http :8080] [-pace] [-speed 1.0] [-reference]
//	           [-batch 1] [-skip-threshold -1]
//	           [-ingest-token T] [-ingest-queue 64] [-ingest-policy block]
//	           [-ingest-idle-ms 30000] [-ingest-failfast]
//	           [-resume-grace-ms 30000] [-ack-every 8] [-watchdog-ms 0]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ebbiot/internal/aedat"
	"ebbiot/internal/control"
	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/imgproc"
	"ebbiot/internal/ingest"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/scene"
	"ebbiot/internal/sensor"
	"ebbiot/internal/store"
	"ebbiot/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-run:", err)
		os.Exit(1)
	}
}

// newSystem builds one fresh pipeline instance (each sensor stream needs its
// own: systems are stateful) from the live parameter set, so the /params
// endpoint reports exactly what the systems run. reference selects the
// byte-per-pixel frame chain for the EBBI-based systems instead of the
// packed fast path.
func newSystem(name string, res events.Resolution, reference bool, ps control.ParamSet) (core.System, error) {
	switch strings.ToUpper(name) {
	case "EBBIOT":
		cfg := ps.Apply(core.DefaultConfig())
		cfg.Reference = reference
		return core.NewEBBIOT(cfg)
	case "KF", "EBBI+KF":
		cfg := ps.ApplyKF(core.DefaultKFConfig())
		cfg.Reference = reference
		return core.NewEBBIKF(cfg)
	case "EBMS":
		cfg := core.DefaultEBMSConfig()
		cfg.Res = res
		return core.NewEBMS(cfg)
	default:
		return nil, fmt.Errorf("unknown system %q", name)
	}
}

// printStreamOutcomes writes one terminal-state line per stream to w and
// returns the names of streams that ended failed; the caller turns a
// nonempty list into a nonzero exit.
func printStreamOutcomes(w io.Writer, snap pipeline.StatusSnapshot) (failed []string) {
	for _, ss := range snap.PerStream {
		line := fmt.Sprintf("stream %s: %s (%d windows, %d events)", ss.Name, ss.State, ss.Windows, ss.Events)
		if ss.Stalls > 0 || ss.Restarts > 0 {
			line += fmt.Sprintf("; stalls %d, restarts %d", ss.Stalls, ss.Restarts)
		}
		if ss.Source != nil && ss.Source.Resumes > 0 {
			line += fmt.Sprintf("; resumed %d time(s), epoch %d", ss.Source.Resumes, ss.Source.Epoch)
		}
		if ss.Error != "" {
			line += ": " + ss.Error
		}
		fmt.Fprintln(w, line)
		if ss.State == pipeline.StreamFailed.String() {
			failed = append(failed, ss.Name)
		}
	}
	return failed
}

func run() error {
	in := flag.String("in", "", "input AER file (this or -scene is required)")
	sceneMS := flag.Int64("scene", 0, "synthesise a single-object scene of this many milliseconds instead of reading -in")
	sysName := flag.String("system", "EBBIOT", "pipeline: EBBIOT, KF or EBMS")
	frameMS := flag.Int64("frame-ms", 66, "frame duration tF in milliseconds")
	statsPath := flag.String("stats", "", "optional per-frame statistics CSV output (first sensor)")
	sensors := flag.Int("sensors", 1, "number of independent sensor streams replaying the recording")
	workers := flag.Int("workers", 0, "worker goroutines sharding the streams (0 = one per CPU)")
	jsonOut := flag.Bool("json", false, "emit JSON Lines snapshots instead of CSV rows")
	storeDir := flag.String("store", "", "record snapshots into an append-only store at this directory")
	storeSegMB := flag.Int64("store-segment-mb", 64, "store segment rotation size in MiB")
	storeSync := flag.Int("store-sync", 0, "store fsync cadence: every N appends (0 = rotate/close only)")
	storeRetainMB := flag.Int64("store-retain-mb", 0, "expire oldest store segments once the directory exceeds this many MiB (0 = keep everything)")
	storeRetainAgeH := flag.Float64("store-retain-age-h", 0, "expire store segments sealed longer than this many hours ago (0 = keep everything)")
	httpAddr := flag.String("http", "", "serve the control plane (healthz/stats/streams/params/metrics) on this address")
	pace := flag.Bool("pace", false, "release windows at recorded wall-clock speed instead of as fast as possible")
	speed := flag.Float64("speed", 1.0, "pacing speed multiplier with -pace (1 = recorded speed)")
	reference := flag.Bool("reference", false, "use the byte-per-pixel reference frame chain instead of the packed word-parallel fast path")
	batch := flag.Int("batch", 1, "windows pulled and processed per stream iteration; >1 amortizes per-window dispatch but coarsens live retunes and snapshot latency to batch boundaries")
	skipThresh := flag.Int("skip-threshold", -1, "skip windows with fewer in-array events than this (0 disables, -1 keeps the lossless default floor(p^2/2)+1)")
	listen := flag.String("listen", "", "ingest server mode: accept framed-TCP sensor connections on this address instead of reading -in/-scene")
	streamIDs := flag.String("streams", "", "comma-separated stream IDs the ingest server expects (required with -listen)")
	ingestToken := flag.String("ingest-token", "", "shared-secret token every sensor handshake must present (empty disables auth)")
	ingestQueue := flag.Int("ingest-queue", 64, "per-stream ingest queue depth in batches")
	ingestPolicy := flag.String("ingest-policy", "block", "full-queue policy: block (backpressure to the sender), drop-oldest or drop-newest")
	ingestIdleMS := flag.Int64("ingest-idle-ms", 30000, "per-connection idle timeout in milliseconds; a sensor that stalls longer faults as a stalled writer")
	ingestFailFast := flag.Bool("ingest-failfast", false, "a faulted sensor stream fails the whole run instead of ending just its own stream")
	resumeGraceMS := flag.Int64("resume-grace-ms", 30000, "how long a disconnected ingest stream stays resumable before faulting for real (0 disables session resume)")
	ackEvery := flag.Int("ack-every", 8, "ingest server ACK cadence in accepted batches (wire v2 clients)")
	watchdogMS := flag.Int64("watchdog-ms", 0, "flag a stream as stalled when it completes no window within this many milliseconds (0 disables the watchdog)")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*in != "", *sceneMS > 0, *listen != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -in, -scene or -listen is required")
	}
	if *sensors < 1 {
		return fmt.Errorf("-sensors must be at least 1")
	}

	// One line so every run's logs say which kernel arm produced its
	// numbers — indispensable when comparing timings across machines.
	fmt.Fprintf(os.Stderr, "kernels: %s\n", imgproc.KernelInfo())

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the run context;
	// streams stop at the next window boundary, the Runner drains the
	// fan-in and flushes every sink, and partial stats are printed below.
	// Once the context is canceled, stop() restores the default signal
	// disposition, so a second signal kills the process the usual way even
	// if a sink is wedged.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	// The live parameter set every stream consults; /params serves and
	// retunes it when -http is given.
	ps := control.Defaults()
	ps.FrameUS = *frameMS * 1000
	if *skipThresh >= 0 {
		ps.SkipEventsBelow = *skipThresh
	}
	paramStore, err := control.NewParamStore(ps)
	if err != nil {
		return err
	}
	ps = paramStore.Load()

	// One stream per sensor. A single sensor streams the file incrementally;
	// replicated sensors decode it once and shard in-memory slices. Scene
	// mode synthesises one deterministic simulator per sensor; listen mode
	// waits for one network connection per expected stream ID.
	var ids []string
	if *listen != "" {
		for _, id := range strings.Split(*streamIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return fmt.Errorf("-listen requires -streams with at least one stream id")
		}
		if *pace {
			return fmt.Errorf("-pace does not apply to -listen: network streams already arrive at sensor speed")
		}
		*sensors = len(ids)
	}
	var streams []pipeline.Stream
	collectors := make([]trace.Collector, *sensors)
	var res events.Resolution
	var ingestSrv *ingest.Server
	switch {
	case *listen != "":
		policy, err := ingest.ParseDropPolicy(*ingestPolicy)
		if err != nil {
			return err
		}
		res = events.DAVIS240
		// Flag semantics: 0 disables resume; the ServerConfig spelling for
		// "disabled" is a negative grace.
		grace := time.Duration(*resumeGraceMS) * time.Millisecond
		if grace == 0 {
			grace = -1
		}
		ingestSrv, err = ingest.Listen(*listen, ingest.ServerConfig{
			Streams:      ids,
			Token:        *ingestToken,
			Res:          res,
			QueueBatches: *ingestQueue,
			Policy:       policy,
			FailFast:     *ingestFailFast,
			IdleTimeout:  time.Duration(*ingestIdleMS) * time.Millisecond,
			ResumeGrace:  grace,
			AckEvery:     *ackEvery,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		defer ingestSrv.Close()
		// SIGINT must unblock streams waiting on quiet connections.
		context.AfterFunc(ctx, func() { ingestSrv.Close() })
		fmt.Fprintf(os.Stderr, "ingest server on %s (streams: %s, policy %s, queue %d batches)\n",
			ingestSrv.Addr(), strings.Join(ids, ","), policy, *ingestQueue)
		for _, id := range ids {
			streams = append(streams, pipeline.Stream{Name: id, Source: ingestSrv.Source(id)})
		}
	case *sceneMS > 0:
		res = events.DAVIS240
		durUS := *sceneMS * 1000
		sc := scene.SingleObjectScene(res, durUS)
		for i := 0; i < *sensors; i++ {
			sim, err := sensor.New(sensor.DefaultConfig(42+uint64(i)), sc)
			if err != nil {
				return err
			}
			src, err := pipeline.NewSceneSource(sim, durUS)
			if err != nil {
				return err
			}
			streams = append(streams, pipeline.Stream{Source: src})
		}
	case *sensors == 1:
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := aedat.NewReader(f)
		if err != nil {
			return err
		}
		res = r.Resolution()
		streams = append(streams, pipeline.Stream{Source: pipeline.NewAEDATSource(r)})
	default:
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		var evs []events.Event
		res, evs, err = aedat.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		for i := 0; i < *sensors; i++ {
			src, err := pipeline.NewSliceSource(evs)
			if err != nil {
				return err
			}
			streams = append(streams, pipeline.Stream{Source: src})
		}
	}
	for i := range streams {
		sys, err := newSystem(*sysName, res, *reference, ps)
		if err != nil {
			return err
		}
		streams[i].System = sys
		col := &collectors[i]
		streams[i].Observer = func(snap pipeline.TrackSnapshot, sys core.System) error {
			fs := trace.FrameStat{Frame: snap.Frame, EndUS: snap.EndUS, Events: snap.Events, Reported: len(snap.Boxes)}
			if eb, ok := sys.(*core.EBBIOT); ok {
				fs.Proposals = len(eb.LastRPN().Proposals)
				fs.Active = eb.Tracker().ActiveTracks()
			}
			col.Record(fs)
			return nil
		}
	}
	if *pace {
		if *speed <= 0 {
			return fmt.Errorf("-speed must be positive, got %v", *speed)
		}
		for i := range streams {
			paced, err := pipeline.NewPacedSource(streams[i].Source, pipeline.PaceConfig{Speed: *speed, Done: ctx.Done()})
			if err != nil {
				return err
			}
			streams[i].Source = paced
		}
	}

	// The Runner flushes buffering sinks itself and surfaces their errors.
	var sink pipeline.Sink
	if *jsonOut {
		sink = pipeline.NewJSONSink(os.Stdout)
	} else {
		cs, err := pipeline.NewCSVSink(os.Stdout)
		if err != nil {
			return err
		}
		sink = cs
	}
	var sw *store.Writer
	if *storeDir != "" {
		sw, err = store.Open(*storeDir, store.Options{
			SegmentBytes: *storeSegMB << 20,
			SyncEvery:    *storeSync,
			ParamsHash:   ps.Hash(),
			Retention: store.RetentionPolicy{
				MaxAgeUS: int64(*storeRetainAgeH * 3600 * 1e6),
				MaxBytes: *storeRetainMB << 20,
			},
		})
		if err != nil {
			return err
		}
		sink = pipeline.MultiSink{sink, pipeline.NewStoreSink(sw)}
	}

	runner, err := pipeline.NewRunner(pipeline.Config{
		FrameUS:  ps.FrameUS,
		Workers:  *workers,
		Batch:    *batch,
		Watchdog: time.Duration(*watchdogMS) * time.Millisecond,
	})
	if err != nil {
		return err
	}

	// Control plane: live status from the runner, live parameters through
	// per-stream tuners that apply new versions at window boundaries.
	if *httpAddr != "" {
		control.Attach(streams, paramStore)
		addr, shutdown, err := control.Serve(*httpAddr, control.NewServer(paramStore, runner).Handler(),
			func(serr error) { fmt.Fprintln(os.Stderr, "ebbiot-run: control server:", serr) })
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "control plane on http://%s (healthz, stats, streams/{id}, params, metrics)\n", addr)
	}

	stats, err := runner.Run(ctx, streams, sink)
	if sw != nil {
		// Seal the store even on a failed run; keep the run's error first.
		if cerr := sw.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	interrupted := ctx.Err() != nil && errors.Is(err, context.Canceled)
	if interrupted {
		fmt.Fprintln(os.Stderr, "ebbiot-run: interrupted — streams stopped at the window boundary, sinks drained and flushed; partial stats follow")
		err = nil
	}
	// Per-stream outcomes: one terminal-state line per stream, so a fleet
	// run says which sensors finished and which died. Any failed stream
	// forces a nonzero exit even when the run error was cleared above.
	if rs := runner.Status(); rs != nil {
		if failed := printStreamOutcomes(os.Stderr, rs.Snapshot()); len(failed) > 0 && err == nil {
			err = fmt.Errorf("%d stream(s) failed: %s", len(failed), strings.Join(failed, ", "))
		}
	}
	if err != nil {
		return err
	}

	if *statsPath != "" {
		sf, err := os.Create(*statsPath)
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := trace.WriteCSV(sf, collectors[0].Stats()); err != nil {
			return err
		}
	}

	sum := collectors[0].Summarize()
	fmt.Fprintf(os.Stderr, "%s processed %d frames/sensor: mean events/frame %.0f, mean proposals %.2f, mean active tracks (NT) %.2f, peak %d\n",
		strings.ToUpper(*sysName), sum.Frames, sum.MeanEvents, sum.MeanProposals, sum.MeanActive, sum.MaxActive)
	fmt.Fprintf(os.Stderr, "throughput: %d sensors x %d workers: %d windows (%.0f windows/s), %d events (%.3g events/s) in %v\n",
		stats.Streams, stats.Workers, stats.Windows, stats.WindowsPerSec(), stats.Events, stats.EventsPerSec(), stats.Elapsed.Round(1e6))

	// Per-stage breakdown: EBBI-based systems record their frame-chain
	// stage times; the sink stage comes from the Runner. Kernel speedups
	// are visible here directly, without a go test -bench run.
	var agg core.StageTimings
	for i := range streams {
		if st, ok := streams[i].System.(core.StageTimer); ok {
			agg = agg.Add(st.StageTimings())
		}
	}
	if agg.Windows > 0 {
		perUS := func(d time.Duration) float64 {
			return float64(d.Microseconds()) / float64(agg.Windows)
		}
		sinkUS := 0.0
		if stats.Windows > 0 {
			sinkUS = float64(stats.SinkTime.Microseconds()) / float64(stats.Windows)
		}
		path := "packed"
		if *reference {
			path = "reference"
		}
		fmt.Fprintf(os.Stderr, "stage breakdown (%s path, batch %d, mean µs/window over %d windows): ebbi %.1f, filter %.1f, rpn %.1f, track %.1f, sink %.1f, skipped %d (%.1f%%), active px %.1f%%\n",
			path, *batch, agg.Windows, perUS(agg.EBBI), perUS(agg.Filter), perUS(agg.RPN), perUS(agg.Track), sinkUS,
			agg.Skipped, 100*float64(agg.Skipped)/float64(agg.Windows),
			100*agg.MeanActiveFraction())
	}
	// Ingest health per stream: what the wire delivered, what policy or
	// transport shed. A nonzero drop/fault count here is the backpressure
	// story of the run, not an error.
	if ingestSrv != nil {
		if rs := runner.Status(); rs != nil {
			for _, ss := range rs.Snapshot().PerStream {
				if ss.Source == nil {
					continue
				}
				src := ss.Source
				line := fmt.Sprintf("ingest %s: accepted %d batches / %d events; dropped %d batches / %d events; dup %d, gaps %d, faults %d",
					ss.Name, src.Batches, src.Events, src.DroppedBatches, src.DroppedEvents, src.DupBatches, src.SeqGaps, src.Faults)
				if src.LastError != "" {
					line += " (last: " + src.LastError + ")"
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	if v := paramStore.Version(); v > 1 {
		fmt.Fprintf(os.Stderr, "params: finished on version %d (retuned live %d time(s))\n", v, v-1)
	}
	if sw != nil {
		fmt.Fprintf(os.Stderr, "recorded %d snapshots to %s as run %d (list/verify/replay with: ebbiot-query -store %s)\n",
			stats.Windows, *storeDir, sw.RunID(), *storeDir)
	}
	return nil
}
