// Command ebbiot-run replays a recorded AER file through one of the three
// tracking pipelines via the streaming pipeline runtime and prints the
// per-frame track boxes (CSV to stdout, one row per box, with a sensor
// column).
//
// With -sensors N > 1 the recording is decoded once and replayed as N
// independent sensor streams sharded across -workers worker goroutines —
// each stream drives its own system instance — which exercises the
// multi-sensor Runner and measures aggregate throughput. A summary with
// events/s and windows/s is printed to stderr either way.
//
// Usage:
//
//	ebbiot-run -in eng.aer [-system EBBIOT|KF|EBMS] [-frame-ms 66]
//	           [-sensors N] [-workers M] [-stats stats.csv] [-json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"ebbiot/internal/aedat"
	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-run:", err)
		os.Exit(1)
	}
}

// newSystem builds one fresh pipeline instance (each sensor stream needs its
// own: systems are stateful).
func newSystem(name string, res events.Resolution) (core.System, error) {
	switch strings.ToUpper(name) {
	case "EBBIOT":
		return core.NewEBBIOT(core.DefaultConfig())
	case "KF", "EBBI+KF":
		return core.NewEBBIKF(core.DefaultKFConfig())
	case "EBMS":
		cfg := core.DefaultEBMSConfig()
		cfg.Res = res
		return core.NewEBMS(cfg)
	default:
		return nil, fmt.Errorf("unknown system %q", name)
	}
}

func run() error {
	in := flag.String("in", "", "input AER file (required)")
	sysName := flag.String("system", "EBBIOT", "pipeline: EBBIOT, KF or EBMS")
	frameMS := flag.Int64("frame-ms", 66, "frame duration tF in milliseconds")
	statsPath := flag.String("stats", "", "optional per-frame statistics CSV output (first sensor)")
	sensors := flag.Int("sensors", 1, "number of independent sensor streams replaying the recording")
	workers := flag.Int("workers", 0, "worker goroutines sharding the streams (0 = one per CPU)")
	jsonOut := flag.Bool("json", false, "emit JSON Lines snapshots instead of CSV rows")
	flag.Parse()

	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *sensors < 1 {
		return fmt.Errorf("-sensors must be at least 1")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	// One stream per sensor. A single sensor streams the file incrementally;
	// replicated sensors decode it once and shard in-memory slices.
	var streams []pipeline.Stream
	collectors := make([]trace.Collector, *sensors)
	var res events.Resolution
	if *sensors == 1 {
		r, err := aedat.NewReader(f)
		if err != nil {
			return err
		}
		res = r.Resolution()
		streams = append(streams, pipeline.Stream{Source: pipeline.NewAEDATSource(r)})
	} else {
		var evs []events.Event
		res, evs, err = aedat.Read(f)
		if err != nil {
			return err
		}
		for i := 0; i < *sensors; i++ {
			src, err := pipeline.NewSliceSource(evs)
			if err != nil {
				return err
			}
			streams = append(streams, pipeline.Stream{Source: src})
		}
	}
	for i := range streams {
		sys, err := newSystem(*sysName, res)
		if err != nil {
			return err
		}
		streams[i].System = sys
		col := &collectors[i]
		streams[i].Observer = func(snap pipeline.TrackSnapshot, sys core.System) error {
			fs := trace.FrameStat{Frame: snap.Frame, EndUS: snap.EndUS, Events: snap.Events, Reported: len(snap.Boxes)}
			if eb, ok := sys.(*core.EBBIOT); ok {
				fs.Proposals = len(eb.LastRPN().Proposals)
				fs.Active = eb.Tracker().ActiveTracks()
			}
			col.Record(fs)
			return nil
		}
	}

	var sink pipeline.Sink
	var flush func() error
	if *jsonOut {
		js := pipeline.NewJSONSink(os.Stdout)
		sink, flush = js, js.Flush
	} else {
		cs, err := pipeline.NewCSVSink(os.Stdout)
		if err != nil {
			return err
		}
		sink, flush = cs, cs.Flush
	}

	runner, err := pipeline.NewRunner(pipeline.Config{FrameUS: *frameMS * 1000, Workers: *workers})
	if err != nil {
		return err
	}
	stats, err := runner.Run(context.Background(), streams, sink)
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}

	if *statsPath != "" {
		sf, err := os.Create(*statsPath)
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := trace.WriteCSV(sf, collectors[0].Stats()); err != nil {
			return err
		}
	}

	sum := collectors[0].Summarize()
	fmt.Fprintf(os.Stderr, "%s processed %d frames/sensor: mean events/frame %.0f, mean proposals %.2f, mean active tracks (NT) %.2f, peak %d\n",
		strings.ToUpper(*sysName), sum.Frames, sum.MeanEvents, sum.MeanProposals, sum.MeanActive, sum.MaxActive)
	fmt.Fprintf(os.Stderr, "throughput: %d sensors x %d workers: %d windows (%.0f windows/s), %d events (%.3g events/s) in %v\n",
		stats.Streams, stats.Workers, stats.Windows, stats.WindowsPerSec(), stats.Events, stats.EventsPerSec(), stats.Elapsed.Round(1e6))
	return nil
}
