// Command ebbiot-run replays a recorded AER file through one of the three
// tracking pipelines via the streaming pipeline runtime and prints the
// per-frame track boxes (CSV to stdout, one row per box, with a sensor
// column).
//
// With -sensors N > 1 the recording is decoded once and replayed as N
// independent sensor streams sharded across -workers worker goroutines —
// each stream drives its own system instance — which exercises the
// multi-sensor Runner and measures aggregate throughput. A summary with
// events/s and windows/s is printed to stderr either way.
//
// With -store DIR every snapshot is additionally persisted into the
// embedded append-only snapshot store (internal/store), so the run can be
// interrogated later with ebbiot-query — scanned by sensor and time range
// or replayed in full. -store-segment-mb and -store-sync tune segment
// rotation and the fsync cadence.
//
// The EBBI-based systems run the packed word-parallel frame kernels by
// default; -reference selects the byte-per-pixel cost-model path instead
// (identical tracking output, slower). The summary includes a per-stage
// timing breakdown (ebbi / filter / rpn / track / sink) so kernel
// before/after numbers are visible straight from the CLI.
//
// Usage:
//
//	ebbiot-run -in eng.aer [-system EBBIOT|KF|EBMS] [-frame-ms 66]
//	           [-sensors N] [-workers M] [-stats stats.csv] [-json]
//	           [-store dir] [-store-segment-mb 64] [-store-sync 0]
//	           [-reference]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ebbiot/internal/aedat"
	"ebbiot/internal/core"
	"ebbiot/internal/events"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/store"
	"ebbiot/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-run:", err)
		os.Exit(1)
	}
}

// newSystem builds one fresh pipeline instance (each sensor stream needs its
// own: systems are stateful). reference selects the byte-per-pixel frame
// chain for the EBBI-based systems instead of the packed fast path.
func newSystem(name string, res events.Resolution, reference bool) (core.System, error) {
	switch strings.ToUpper(name) {
	case "EBBIOT":
		cfg := core.DefaultConfig()
		cfg.Reference = reference
		return core.NewEBBIOT(cfg)
	case "KF", "EBBI+KF":
		cfg := core.DefaultKFConfig()
		cfg.Reference = reference
		return core.NewEBBIKF(cfg)
	case "EBMS":
		cfg := core.DefaultEBMSConfig()
		cfg.Res = res
		return core.NewEBMS(cfg)
	default:
		return nil, fmt.Errorf("unknown system %q", name)
	}
}

func run() error {
	in := flag.String("in", "", "input AER file (required)")
	sysName := flag.String("system", "EBBIOT", "pipeline: EBBIOT, KF or EBMS")
	frameMS := flag.Int64("frame-ms", 66, "frame duration tF in milliseconds")
	statsPath := flag.String("stats", "", "optional per-frame statistics CSV output (first sensor)")
	sensors := flag.Int("sensors", 1, "number of independent sensor streams replaying the recording")
	workers := flag.Int("workers", 0, "worker goroutines sharding the streams (0 = one per CPU)")
	jsonOut := flag.Bool("json", false, "emit JSON Lines snapshots instead of CSV rows")
	storeDir := flag.String("store", "", "record snapshots into an append-only store at this directory")
	storeSegMB := flag.Int64("store-segment-mb", 64, "store segment rotation size in MiB")
	storeSync := flag.Int("store-sync", 0, "store fsync cadence: every N appends (0 = rotate/close only)")
	reference := flag.Bool("reference", false, "use the byte-per-pixel reference frame chain instead of the packed word-parallel fast path")
	flag.Parse()

	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *sensors < 1 {
		return fmt.Errorf("-sensors must be at least 1")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	// One stream per sensor. A single sensor streams the file incrementally;
	// replicated sensors decode it once and shard in-memory slices.
	var streams []pipeline.Stream
	collectors := make([]trace.Collector, *sensors)
	var res events.Resolution
	if *sensors == 1 {
		r, err := aedat.NewReader(f)
		if err != nil {
			return err
		}
		res = r.Resolution()
		streams = append(streams, pipeline.Stream{Source: pipeline.NewAEDATSource(r)})
	} else {
		var evs []events.Event
		res, evs, err = aedat.Read(f)
		if err != nil {
			return err
		}
		for i := 0; i < *sensors; i++ {
			src, err := pipeline.NewSliceSource(evs)
			if err != nil {
				return err
			}
			streams = append(streams, pipeline.Stream{Source: src})
		}
	}
	for i := range streams {
		sys, err := newSystem(*sysName, res, *reference)
		if err != nil {
			return err
		}
		streams[i].System = sys
		col := &collectors[i]
		streams[i].Observer = func(snap pipeline.TrackSnapshot, sys core.System) error {
			fs := trace.FrameStat{Frame: snap.Frame, EndUS: snap.EndUS, Events: snap.Events, Reported: len(snap.Boxes)}
			if eb, ok := sys.(*core.EBBIOT); ok {
				fs.Proposals = len(eb.LastRPN().Proposals)
				fs.Active = eb.Tracker().ActiveTracks()
			}
			col.Record(fs)
			return nil
		}
	}

	// The Runner flushes buffering sinks itself and surfaces their errors.
	var sink pipeline.Sink
	if *jsonOut {
		sink = pipeline.NewJSONSink(os.Stdout)
	} else {
		cs, err := pipeline.NewCSVSink(os.Stdout)
		if err != nil {
			return err
		}
		sink = cs
	}
	var sw *store.Writer
	if *storeDir != "" {
		sw, err = store.Open(*storeDir, store.Options{
			SegmentBytes: *storeSegMB << 20,
			SyncEvery:    *storeSync,
		})
		if err != nil {
			return err
		}
		sink = pipeline.MultiSink{sink, pipeline.NewStoreSink(sw)}
	}

	runner, err := pipeline.NewRunner(pipeline.Config{FrameUS: *frameMS * 1000, Workers: *workers})
	if err != nil {
		return err
	}
	stats, err := runner.Run(context.Background(), streams, sink)
	if sw != nil {
		// Seal the store even on a failed run; keep the run's error first.
		if cerr := sw.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}

	if *statsPath != "" {
		sf, err := os.Create(*statsPath)
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := trace.WriteCSV(sf, collectors[0].Stats()); err != nil {
			return err
		}
	}

	sum := collectors[0].Summarize()
	fmt.Fprintf(os.Stderr, "%s processed %d frames/sensor: mean events/frame %.0f, mean proposals %.2f, mean active tracks (NT) %.2f, peak %d\n",
		strings.ToUpper(*sysName), sum.Frames, sum.MeanEvents, sum.MeanProposals, sum.MeanActive, sum.MaxActive)
	fmt.Fprintf(os.Stderr, "throughput: %d sensors x %d workers: %d windows (%.0f windows/s), %d events (%.3g events/s) in %v\n",
		stats.Streams, stats.Workers, stats.Windows, stats.WindowsPerSec(), stats.Events, stats.EventsPerSec(), stats.Elapsed.Round(1e6))

	// Per-stage breakdown: EBBI-based systems record their frame-chain
	// stage times; the sink stage comes from the Runner. Kernel speedups
	// are visible here directly, without a go test -bench run.
	var agg core.StageTimings
	for i := range streams {
		if st, ok := streams[i].System.(core.StageTimer); ok {
			agg = agg.Add(st.StageTimings())
		}
	}
	if agg.Windows > 0 {
		perUS := func(d time.Duration) float64 {
			return float64(d.Microseconds()) / float64(agg.Windows)
		}
		sinkUS := 0.0
		if stats.Windows > 0 {
			sinkUS = float64(stats.SinkTime.Microseconds()) / float64(stats.Windows)
		}
		path := "packed"
		if *reference {
			path = "reference"
		}
		fmt.Fprintf(os.Stderr, "stage breakdown (%s path, mean µs/window over %d windows): ebbi %.1f, filter %.1f, rpn %.1f, track %.1f, sink %.1f\n",
			path, agg.Windows, perUS(agg.EBBI), perUS(agg.Filter), perUS(agg.RPN), perUS(agg.Track), sinkUS)
	}
	if *storeDir != "" {
		fmt.Fprintf(os.Stderr, "recorded %d snapshots to %s (query with: ebbiot-query -store %s)\n",
			stats.Windows, *storeDir, *storeDir)
	}
	return nil
}
