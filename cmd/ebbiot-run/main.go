// Command ebbiot-run replays a recorded AER file through one of the three
// tracking pipelines and prints the per-frame track boxes (CSV to stdout).
//
// Usage:
//
//	ebbiot-run -in eng.aer [-system EBBIOT|KF|EBMS] [-frame-ms 66]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ebbiot/internal/aedat"
	"ebbiot/internal/core"
	"ebbiot/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-run:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input AER file (required)")
	sysName := flag.String("system", "EBBIOT", "pipeline: EBBIOT, KF or EBMS")
	frameMS := flag.Int64("frame-ms", 66, "frame duration tF in milliseconds")
	statsPath := flag.String("stats", "", "optional per-frame statistics CSV output")
	flag.Parse()

	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := aedat.NewReader(f)
	if err != nil {
		return err
	}

	var sys core.System
	switch strings.ToUpper(*sysName) {
	case "EBBIOT":
		sys, err = core.NewEBBIOT(core.DefaultConfig())
	case "KF", "EBBI+KF":
		sys, err = core.NewEBBIKF(core.DefaultKFConfig())
	case "EBMS":
		cfg := core.DefaultEBMSConfig()
		cfg.Res = r.Resolution()
		sys, err = core.NewEBMS(cfg)
	default:
		return fmt.Errorf("unknown system %q", *sysName)
	}
	if err != nil {
		return err
	}

	fmt.Println("frame,end_us,box_x,box_y,box_w,box_h")
	frameUS := *frameMS * 1000
	frame := 0
	var collector trace.Collector
	for {
		end := int64(frame+1) * frameUS
		evs, werr := r.NextWindow(end)
		boxes, perr := sys.ProcessWindow(evs)
		if perr != nil {
			return perr
		}
		for _, b := range boxes {
			fmt.Printf("%d,%d,%d,%d,%d,%d\n", frame, end, b.X, b.Y, b.W, b.H)
		}
		fs := trace.FrameStat{Frame: frame, EndUS: end, Events: len(evs), Reported: len(boxes)}
		if eb, ok := sys.(*core.EBBIOT); ok {
			fs.Proposals = len(eb.LastRPN().Proposals)
			fs.Active = eb.Tracker().ActiveTracks()
		}
		collector.Record(fs)
		frame++
		if werr != nil {
			if errors.Is(werr, io.EOF) {
				break
			}
			return werr
		}
	}
	if *statsPath != "" {
		sf, err := os.Create(*statsPath)
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := trace.WriteCSV(sf, collector.Stats()); err != nil {
			return err
		}
	}
	sum := collector.Summarize()
	fmt.Fprintf(os.Stderr, "%s processed %d frames: mean events/frame %.0f, mean proposals %.2f, mean active tracks (NT) %.2f, peak %d\n",
		sys.Name(), sum.Frames, sum.MeanEvents, sum.MeanProposals, sum.MeanActive, sum.MaxActive)
	return nil
}
