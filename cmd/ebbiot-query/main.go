// Command ebbiot-query interrogates an append-only snapshot store recorded
// by ebbiot-run -store (or any pipeline StoreSink): what did sensor k see
// between t0 and t1, long after the run exited.
//
// Modes (-mode):
//
//	list    summarise the store: segments, records, bytes, time range and
//	        the sensors present (the default)
//	scan    print one sensor's snapshots whose windows overlap [-from, -to)
//	        in frame order, as CSV rows (or JSON Lines with -json)
//	replay  merge any set of sensors in timestamp order and feed them back
//	        through the pipeline sinks — the offline re-evaluation path;
//	        prints the same per-frame trace summary as a live run and can
//	        dump per-frame statistics with -stats. With -speed the replay is
//	        paced on the recorded clock (1 = recorded speed) and with -http
//	        the control plane's monitoring endpoints (/healthz, /stats,
//	        /streams/{id}, /metrics) observe it live, exactly like a live
//	        run — /params answers 404 since a replay has no live parameters
//	verify  rescan every record's framing and checksum, reporting any
//	        invalid tail a crash left behind (exit status 1 if found)
//
// Usage:
//
//	ebbiot-query -store dir [-mode list|scan|replay|verify]
//	             [-sensor N] [-sensors 0,2,5] [-from us] [-to us]
//	             [-json] [-stats stats.csv] [-speed X] [-http :8080]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"ebbiot/internal/control"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/store"
	"ebbiot/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-query:", err)
		os.Exit(1)
	}
}

func run() error {
	storeDir := flag.String("store", "", "store directory (required)")
	mode := flag.String("mode", "list", "operation: list, scan, replay or verify")
	sensor := flag.Int("sensor", -1, "sensor id for -mode scan")
	sensorList := flag.String("sensors", "", "comma-separated sensor ids for -mode replay (default all)")
	from := flag.Int64("from", 0, "window overlap lower bound in microseconds (inclusive)")
	to := flag.Int64("to", math.MaxInt64, "window overlap upper bound in microseconds (exclusive)")
	jsonOut := flag.Bool("json", false, "emit JSON Lines snapshots instead of CSV rows")
	statsPath := flag.String("stats", "", "per-frame statistics CSV output for -mode replay (first sensor)")
	speed := flag.Float64("speed", 0, "pace -mode replay at recorded wall-clock speed times this factor (0 = full speed)")
	httpAddr := flag.String("http", "", "serve live monitoring of -mode replay on this address")
	flag.Parse()

	if *storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	switch *mode {
	case "list":
		return list(*storeDir)
	case "scan":
		if *sensor < 0 {
			return fmt.Errorf("-mode scan requires -sensor")
		}
		return scan(*storeDir, *sensor, *from, *to, *jsonOut)
	case "replay":
		if *speed < 0 {
			return fmt.Errorf("-speed must be >= 0 (0 = full speed), got %v", *speed)
		}
		// ReplayOptions treats T1 <= 0 as "no upper bound"; the flag's
		// contract is a literal exclusive bound, so reject values that
		// would silently invert into a full replay.
		if *to <= 0 {
			return fmt.Errorf("-to must be positive (exclusive upper bound in µs), got %d", *to)
		}
		sensors, err := parseSensors(*sensorList)
		if err != nil {
			return err
		}
		return replay(*storeDir, sensors, *from, *to, *jsonOut, *statsPath, *speed, *httpAddr)
	case "verify":
		return verify(*storeDir)
	default:
		return fmt.Errorf("unknown mode %q (want list, scan, replay or verify)", *mode)
	}
}

// parseSensors parses "0,2,5" into sensor ids; empty means all.
func parseSensors(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad sensor id %q in -sensors", part)
		}
		out = append(out, id)
	}
	return out, nil
}

func list(dir string) error {
	r, err := store.OpenReader(dir)
	if err != nil {
		return err
	}
	st := r.Stats()
	fmt.Printf("store %s\n", dir)
	fmt.Printf("  segments: %d\n", st.Segments)
	fmt.Printf("  records:  %d (%d data bytes)\n", st.Records, st.DataBytes)
	if st.DroppedBytes > 0 {
		fmt.Printf("  dropped:  %d invalid tail bytes (run -mode verify for detail)\n", st.DroppedBytes)
	}
	if st.Records > 0 {
		fmt.Printf("  window ends: %d us .. %d us (%.3f s span)\n",
			st.MinEndUS, st.MaxEndUS, float64(st.MaxEndUS-st.MinEndUS)/1e6)
	}
	sensors := r.Sensors()
	fmt.Printf("  sensors:  %d %v\n", len(sensors), sensors)
	return nil
}

// outputSink builds the stdout sink shared by scan and replay.
func outputSink(jsonOut bool) (pipeline.Sink, error) {
	if jsonOut {
		return pipeline.NewJSONSink(os.Stdout), nil
	}
	return pipeline.NewCSVSink(os.Stdout)
}

func scan(dir string, sensor int, from, to int64, jsonOut bool) error {
	r, err := store.OpenReader(dir)
	if err != nil {
		return err
	}
	sink, err := outputSink(jsonOut)
	if err != nil {
		return err
	}
	// Scan (append order), not Replay: a single sensor needs no merge,
	// and this keeps multi-run directories queryable.
	stats, err := pipeline.ScanStore(context.Background(), r, sensor, from, to, sink)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scan: sensor %d: %d windows, %d events, %d boxes\n",
		sensor, stats.Windows, stats.Events, stats.Boxes)
	return nil
}

func replay(dir string, sensors []int, from, to int64, jsonOut bool, statsPath string, speed float64, httpAddr string) error {
	r, err := store.OpenReader(dir)
	if err != nil {
		return err
	}
	out, err := outputSink(jsonOut)
	if err != nil {
		return err
	}
	ts := pipeline.NewTraceSink()

	// A paced replay can run for minutes; the first SIGINT/SIGTERM stops it
	// at the next snapshot with sinks flushed (the summary below still
	// prints), and stop() re-arms default disposition so a second signal
	// kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	// Live monitoring: the replay publishes into a RunStatus, which serves
	// the same observation endpoints as a live run (no /params — a replay
	// has no live parameters to retune).
	status := pipeline.NewRunStatus(1)
	if httpAddr != "" {
		addr, shutdown, err := control.Serve(httpAddr, control.NewServer(nil, status).Handler(),
			func(serr error) { fmt.Fprintln(os.Stderr, "ebbiot-query: monitor server:", serr) })
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "monitoring on http://%s (healthz, stats, streams/{id}, metrics)\n", addr)
	}

	stats, err := pipeline.ReplayStoreWith(ctx, r, pipeline.MultiSink{out, ts}, pipeline.ReplayOptions{
		Sensors: sensors,
		T0:      from,
		T1:      to,
		Speed:   speed,
		Status:  status,
	})
	if ctx.Err() != nil && errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ebbiot-query: interrupted — sinks flushed; partial summary follows")
		err = nil
	}
	if err != nil {
		return err
	}
	seen := ts.Sensors()
	if statsPath != "" && len(seen) > 0 {
		sf, err := os.Create(statsPath)
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := trace.WriteCSV(sf, ts.Collector(seen[0]).Stats()); err != nil {
			return err
		}
	}
	for _, id := range seen {
		sum := ts.Collector(id).Summarize()
		fmt.Fprintf(os.Stderr, "sensor %d: %d frames, mean events/frame %.0f, mean reported boxes %.2f\n",
			id, sum.Frames, sum.MeanEvents, sum.MeanReported)
	}
	fmt.Fprintf(os.Stderr, "replay: %d sensors, %d windows (%.0f windows/s), %d events, %d boxes in %v\n",
		stats.Streams, stats.Windows, stats.WindowsPerSec(), stats.Events, stats.Boxes, stats.Elapsed.Round(1e6))
	return nil
}

func verify(dir string) error {
	rep, err := store.Verify(dir)
	if err != nil {
		return err
	}
	fmt.Printf("verified %d segments: %d records, %d data bytes\n", rep.Segments, rep.Records, rep.DataBytes)
	for _, p := range rep.Problems {
		fmt.Println("  " + p)
	}
	if !rep.Clean() {
		return fmt.Errorf("%d invalid bytes; if they are the last segment's tail, reopening the store for append truncates them — damage in an earlier, sealed segment is not recoverable", rep.DroppedBytes)
	}
	fmt.Println("clean")
	return nil
}
