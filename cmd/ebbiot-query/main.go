// Command ebbiot-query interrogates an append-only snapshot store recorded
// by ebbiot-run -store (or any pipeline StoreSink): what did sensor k see
// between t0 and t1, long after the run exited.
//
// Modes (-mode):
//
//	list    enumerate the directory's runs: id, finalized/recovered state,
//	        segments, tombstones, records, time range and sensors (the
//	        default)
//	scan    print one sensor's snapshots whose windows overlap [-from, -to)
//	        in frame order, as CSV rows (or JSON Lines with -json)
//	replay  merge any set of sensors in timestamp order and feed them back
//	        through the pipeline sinks — the offline re-evaluation path;
//	        prints the same per-frame trace summary as a live run and can
//	        dump per-frame statistics with -stats. With -speed the replay is
//	        paced on the recorded clock (1 = recorded speed) and with -http
//	        the control plane's monitoring endpoints (/healthz, /stats,
//	        /streams/{id}, /metrics) observe it live, exactly like a live
//	        run — /params answers 404 since a replay has no live parameters
//	verify  audit every run against its manifest: recompute each sealed
//	        segment's Merkle root over the record hashes, re-derive the
//	        chained roots through tombstones, and validate sidecar indexes.
//	        With -at N, emit an inclusion proof for record N of the run
//	        instead. Exit status: 0 clean, 1 tampered/damaged, 2 I/O error;
//	        -q suppresses output for scripting
//
// scan, replay and verify -at operate on one run: -run selects it, 0 (the
// default) meaning the directory's sole run — an error when several are
// present, never an interleaved timeline.
//
// Usage:
//
//	ebbiot-query -store dir [-mode list|scan|replay|verify] [-run N]
//	             [-sensor N] [-sensors 0,2,5] [-from us] [-to us]
//	             [-json] [-stats stats.csv] [-speed X] [-http :8080]
//	             [-at seq] [-q]
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"ebbiot/internal/control"
	"ebbiot/internal/pipeline"
	"ebbiot/internal/store"
	"ebbiot/internal/trace"
)

// Verify exit codes (documented in docs/STORE.md; stable for scripting).
const (
	exitClean    = 0
	exitTampered = 1
	exitIOError  = 2
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-query:", err)
		os.Exit(1)
	}
}

func run() error {
	storeDir := flag.String("store", "", "store directory (required)")
	mode := flag.String("mode", "list", "operation: list, scan, replay or verify")
	runID := flag.Uint64("run", 0, "run to scan/replay/prove (0 = the directory's sole run)")
	sensor := flag.Int("sensor", -1, "sensor id for -mode scan")
	sensorList := flag.String("sensors", "", "comma-separated sensor ids for -mode replay (default all)")
	from := flag.Int64("from", 0, "window overlap lower bound in microseconds (inclusive)")
	to := flag.Int64("to", math.MaxInt64, "window overlap upper bound in microseconds (exclusive)")
	jsonOut := flag.Bool("json", false, "emit JSON Lines snapshots instead of CSV rows")
	statsPath := flag.String("stats", "", "per-frame statistics CSV output for -mode replay (first sensor)")
	speed := flag.Float64("speed", 0, "pace -mode replay at recorded wall-clock speed times this factor (0 = full speed)")
	httpAddr := flag.String("http", "", "serve live monitoring of -mode replay on this address")
	at := flag.Int64("at", -1, "emit an inclusion proof for this record seq in -mode verify")
	quiet := flag.Bool("q", false, "-mode verify: print nothing, report by exit status only")
	flag.Parse()

	if *storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	switch *mode {
	case "list":
		return list(*storeDir)
	case "scan":
		if *sensor < 0 {
			return fmt.Errorf("-mode scan requires -sensor")
		}
		return scan(*storeDir, *runID, *sensor, *from, *to, *jsonOut)
	case "replay":
		if *speed < 0 {
			return fmt.Errorf("-speed must be >= 0 (0 = full speed), got %v", *speed)
		}
		// ReplayOptions treats T1 <= 0 as "no upper bound"; the flag's
		// contract is a literal exclusive bound, so reject values that
		// would silently invert into a full replay.
		if *to <= 0 {
			return fmt.Errorf("-to must be positive (exclusive upper bound in µs), got %d", *to)
		}
		sensors, err := parseSensors(*sensorList)
		if err != nil {
			return err
		}
		return replay(*storeDir, *runID, sensors, *from, *to, *jsonOut, *statsPath, *speed, *httpAddr)
	case "verify":
		// verify owns its tri-state exit code; it never returns.
		if *at >= 0 {
			os.Exit(prove(*storeDir, *runID, *at, *quiet))
		}
		os.Exit(verify(*storeDir, *quiet))
		return nil
	default:
		return fmt.Errorf("unknown mode %q (want list, scan, replay or verify)", *mode)
	}
}

// parseSensors parses "0,2,5" into sensor ids; empty means all.
func parseSensors(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad sensor id %q in -sensors", part)
		}
		out = append(out, id)
	}
	return out, nil
}

func list(dir string) error {
	r, err := store.OpenReader(dir)
	if err != nil {
		return err
	}
	runs := r.Runs()
	st := r.Stats()
	fmt.Printf("store %s: %d runs, %d segments (%d expired), %d records, %d data bytes\n",
		dir, len(runs), st.Segments, st.Tombstones, st.Records, st.DataBytes)
	if st.DroppedBytes > 0 {
		fmt.Printf("  dropped: %d invalid tail bytes (run -mode verify for detail)\n", st.DroppedBytes)
	}
	for _, p := range r.ManifestProblems() {
		fmt.Printf("  damaged manifest: %s\n", p)
	}
	for _, ri := range runs {
		state := "open"
		switch {
		case ri.Legacy:
			state = "legacy"
		case ri.Recovered:
			state = "recovered"
		case ri.Finalized:
			state = "finalized"
		}
		fmt.Printf("run %d (%s): %d segments", ri.ID, state, ri.Segments)
		if ri.Tombstones > 0 {
			fmt.Printf(" + %d expired", ri.Tombstones)
		}
		fmt.Printf(", %d records, %d bytes", ri.Records, ri.DataBytes)
		if ri.Records > 0 {
			fmt.Printf(", window ends %d..%d us (%.3f s)", ri.MinEndUS, ri.MaxEndUS,
				float64(ri.MaxEndUS-ri.MinEndUS)/1e6)
		}
		fmt.Printf(", sensors %v", ri.Sensors)
		if ri.ParamsHash != ([32]byte{}) {
			fmt.Printf(", params %s", hex.EncodeToString(ri.ParamsHash[:])[:12])
		}
		fmt.Println()
	}
	if fb := r.IndexFallbacks(); fb > 0 {
		fmt.Printf("  degraded: %d segments read without a usable sidecar index\n", fb)
	}
	return nil
}

// outputSink builds the stdout sink shared by scan and replay.
func outputSink(jsonOut bool) (pipeline.Sink, error) {
	if jsonOut {
		return pipeline.NewJSONSink(os.Stdout), nil
	}
	return pipeline.NewCSVSink(os.Stdout)
}

func scan(dir string, run uint64, sensor int, from, to int64, jsonOut bool) error {
	r, err := store.OpenReader(dir)
	if err != nil {
		return err
	}
	sink, err := outputSink(jsonOut)
	if err != nil {
		return err
	}
	// Scan (append order), not Replay: a single sensor needs no merge.
	stats, err := pipeline.ScanStore(context.Background(), r, run, sensor, from, to, sink)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scan: sensor %d: %d windows, %d events, %d boxes\n",
		sensor, stats.Windows, stats.Events, stats.Boxes)
	return nil
}

func replay(dir string, run uint64, sensors []int, from, to int64, jsonOut bool, statsPath string, speed float64, httpAddr string) error {
	r, err := store.OpenReader(dir)
	if err != nil {
		return err
	}
	out, err := outputSink(jsonOut)
	if err != nil {
		return err
	}
	ts := pipeline.NewTraceSink()

	// A paced replay can run for minutes; the first SIGINT/SIGTERM stops it
	// at the next snapshot with sinks flushed (the summary below still
	// prints), and stop() re-arms default disposition so a second signal
	// kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	// Live monitoring: the replay publishes into a RunStatus, which serves
	// the same observation endpoints as a live run (no /params — a replay
	// has no live parameters to retune).
	status := pipeline.NewRunStatus(1)
	if httpAddr != "" {
		addr, shutdown, err := control.Serve(httpAddr, control.NewServer(nil, status).Handler(),
			func(serr error) { fmt.Fprintln(os.Stderr, "ebbiot-query: monitor server:", serr) })
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "monitoring on http://%s (healthz, stats, streams/{id}, metrics)\n", addr)
	}

	stats, err := pipeline.ReplayStoreWith(ctx, r, pipeline.MultiSink{out, ts}, pipeline.ReplayOptions{
		Run:     run,
		Sensors: sensors,
		T0:      from,
		T1:      to,
		Speed:   speed,
		Status:  status,
	})
	if ctx.Err() != nil && errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ebbiot-query: interrupted — sinks flushed; partial summary follows")
		err = nil
	}
	if err != nil {
		return err
	}
	seen := ts.Sensors()
	if statsPath != "" && len(seen) > 0 {
		sf, err := os.Create(statsPath)
		if err != nil {
			return err
		}
		defer sf.Close()
		if err := trace.WriteCSV(sf, ts.Collector(seen[0]).Stats()); err != nil {
			return err
		}
	}
	for _, id := range seen {
		sum := ts.Collector(id).Summarize()
		fmt.Fprintf(os.Stderr, "sensor %d: %d frames, mean events/frame %.0f, mean reported boxes %.2f\n",
			id, sum.Frames, sum.MeanEvents, sum.MeanReported)
	}
	fmt.Fprintf(os.Stderr, "replay: %d sensors, %d windows (%.0f windows/s), %d events, %d boxes in %v\n",
		stats.Streams, stats.Windows, stats.WindowsPerSec(), stats.Events, stats.Boxes, stats.Elapsed.Round(1e6))
	return nil
}

// verify audits the store, returning the process exit code: 0 clean,
// 1 any integrity problem, 2 I/O failure.
func verify(dir string, quiet bool) int {
	rep, err := store.Verify(dir)
	if err != nil {
		if !quiet {
			fmt.Fprintln(os.Stderr, "ebbiot-query: verify:", err)
		}
		return exitIOError
	}
	if !quiet {
		for _, rv := range rep.Runs {
			label := fmt.Sprintf("run %d", rv.ID)
			if rv.Legacy {
				label = "legacy segments (no manifest)"
			}
			fmt.Printf("%s: %d segments + %d tombstones, %d records, %d bytes",
				label, rv.Segments, rv.Tombstones, rv.Records, rv.DataBytes)
			if rv.TornTailBytes > 0 {
				fmt.Printf(", %d recoverable torn-tail bytes", rv.TornTailBytes)
			}
			switch {
			case len(rv.Problems) > 0:
				fmt.Println(": TAMPERED")
				for _, p := range rv.Problems {
					fmt.Println("  " + p)
				}
			case rv.Legacy:
				fmt.Println(": frames valid (legacy: no Merkle roots to check)")
			default:
				fmt.Println(": roots and chain verified")
			}
		}
		for _, p := range rep.Problems {
			fmt.Println("damaged manifest: " + p)
		}
	}
	if !rep.Clean() {
		if !quiet {
			fmt.Println("TAMPERED")
		}
		return exitTampered
	}
	if !quiet {
		fmt.Println("clean")
	}
	return exitClean
}

// prove emits an inclusion proof for record seq of the selected run.
// Exit codes mirror verify: 0 proof verified, 1 store contradicts its
// manifest (or seq expired), 2 I/O failure.
func prove(dir string, runID uint64, seq int64, quiet bool) int {
	p, err := store.Prove(dir, runID, seq)
	if err != nil {
		if errors.Is(err, store.ErrCorrupt) {
			if !quiet {
				fmt.Fprintln(os.Stderr, "ebbiot-query: proof:", err)
			}
			return exitTampered
		}
		if !quiet {
			fmt.Fprintln(os.Stderr, "ebbiot-query: proof:", err)
		}
		return exitIOError
	}
	if !quiet {
		s := p.Snapshot
		fmt.Printf("record %d of run %d: sensor %d frame %d window [%d,%d) us, %d events, %d boxes\n",
			p.Seq, p.Run, s.Sensor, s.Frame, s.StartUS, s.EndUS, s.Events, len(s.Boxes))
		fmt.Printf("segment %d, leaf %d of %d\n", p.Segment, p.Index, p.Leaves)
		fmt.Printf("leaf  %s\n", hex.EncodeToString(p.Leaf[:]))
		for i, h := range p.Path {
			fmt.Printf("path[%d] %s\n", i, hex.EncodeToString(h[:]))
		}
		fmt.Printf("root  %s\n", hex.EncodeToString(p.Root[:]))
		fmt.Printf("chain %s\n", hex.EncodeToString(p.Chain[:]))
		fmt.Println("proof verified")
	}
	return exitClean
}
