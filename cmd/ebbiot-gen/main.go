// Command ebbiot-gen synthesises a traffic recording (Table I replica) and
// writes it as a binary AER file, plus optional ground-truth annotations as
// CSV.
//
// Usage:
//
//	ebbiot-gen -preset ENG -scale 0.01 -seed 1 -out eng.aer [-gt eng_gt.csv]
//	ebbiot-gen -preset ENG -scale 0.01 -send HOST:PORT -stream cam0 [-token T]
//	           [-connect-retries 10] [-connect-backoff-ms 200]
//	           [-resume-retries 8] [-resume-backoff-ms 200]
//	           [-replay-window 256] [-heartbeat-ms 0]
//
// At -scale 1 the ENG preset emits the full 2998.4 s / ~10^8-event
// recording; small scales produce statistically identical but shorter
// replicas.
//
// With -send the recording is streamed to an `ebbiot-run -listen` ingest
// server over the framed TCP wire protocol (docs/INGEST.md) instead of (or
// in addition to) being written to a file: one batch per -frame-ms chunk,
// closed with the clean end-of-stream frame. Because generation is
// deterministic, sending the same preset/scale/seed twice replays the
// identical event stream — the network counterpart of replaying an AER
// file. A mid-stream connection loss is survived transparently: the sink
// reconnects with the wire-v2 RESUME handshake (budgeted by -resume-retries
// / -resume-backoff-ms) and replays every unacknowledged batch from its
// -replay-window ring; -heartbeat-ms keeps a quiet stream's connection warm.
// The exit summary reports reconnects and replayed batches.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ebbiot/internal/aedat"
	"ebbiot/internal/annot"
	"ebbiot/internal/dataset"
	"ebbiot/internal/ingest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	presetName := flag.String("preset", "ENG", "recording preset: ENG or LT4")
	scale := flag.Float64("scale", 0.01, "duration scale in (0,1]; 1 = full Table I length")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "", "output AER file (required unless -send is given)")
	gtPath := flag.String("gt", "", "optional ground-truth CSV output")
	frameMS := flag.Int64("frame-ms", 66, "generation chunk size in milliseconds")
	send := flag.String("send", "", "stream the recording to an ebbiot-run -listen ingest server at this address")
	streamID := flag.String("stream", "cam0", "stream ID presented in the ingest handshake with -send")
	token := flag.String("token", "", "shared-secret token for the ingest handshake with -send")
	connectRetries := flag.Int("connect-retries", 0, "with -send: extra connect attempts if the server is not up yet")
	connectBackoffMS := flag.Int64("connect-backoff-ms", 200, "with -send: base delay between connect attempts (doubled, jittered)")
	resumeRetries := flag.Int("resume-retries", 8, "with -send: reconnect attempts per mid-stream connection loss before giving up (0 disables resume)")
	resumeBackoffMS := flag.Int64("resume-backoff-ms", 200, "with -send: base delay between resume attempts (doubled, jittered)")
	replayWindow := flag.Int("replay-window", 256, "with -send: batches kept for replay after a resume; Send blocks when this many are unacknowledged")
	heartbeatMS := flag.Int64("heartbeat-ms", 0, "with -send: emit an empty keepalive batch when the stream is quiet this long (0 disables)")
	flag.Parse()

	if *out == "" && *send == "" {
		return fmt.Errorf("one of -out or -send is required")
	}
	var preset dataset.Preset
	switch strings.ToUpper(*presetName) {
	case "ENG":
		preset = dataset.ENG
	case "LT4":
		preset = dataset.LT4
	default:
		return fmt.Errorf("unknown preset %q (want ENG or LT4)", *presetName)
	}
	spec, err := dataset.For(preset, *scale, *seed)
	if err != nil {
		return err
	}
	rec, err := dataset.Generate(spec)
	if err != nil {
		return err
	}

	var w *aedat.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w, err = aedat.NewWriter(f, spec.Sensor.Res)
		if err != nil {
			return err
		}
	}
	var ds *ingest.DialSink
	if *send != "" {
		rr := *resumeRetries
		if rr == 0 {
			rr = -1 // flag 0 means "no resume"; the DialConfig spelling is negative
		}
		ds, err = ingest.Dial(*send, ingest.DialConfig{
			StreamID:       *streamID,
			Token:          *token,
			Res:            spec.Sensor.Res,
			ConnectRetries: *connectRetries,
			ConnectBackoff: time.Duration(*connectBackoffMS) * time.Millisecond,
			ResumeRetries:  rr,
			ResumeBackoff:  time.Duration(*resumeBackoffMS) * time.Millisecond,
			ReplayWindow:   *replayWindow,
			Heartbeat:      time.Duration(*heartbeatMS) * time.Millisecond,
		})
		if err != nil {
			return err
		}
		// Abort (disconnect without the EOF frame) if we bail out early, so
		// the server records a fault instead of waiting for the idle timeout.
		defer ds.Abort()
	}

	var sent int64
	chunk := *frameMS * 1000
	for cursor := int64(0); cursor < spec.DurationUS; {
		end := cursor + chunk
		if end > spec.DurationUS {
			end = spec.DurationUS
		}
		evs, err := rec.Sim.Events(cursor, end)
		if err != nil {
			return err
		}
		if w != nil {
			if err := w.Append(evs); err != nil {
				return err
			}
		}
		if ds != nil {
			if err := ds.Send(evs); err != nil {
				return err
			}
		}
		sent += int64(len(evs))
		cursor = end
	}
	if w != nil {
		if err := w.Close(); err != nil {
			return err
		}
	}
	if ds != nil {
		if err := ds.Close(); err != nil {
			return err
		}
		st := ds.Stats()
		fmt.Printf("%s: sent %d events over %.1f s of recording to %s as stream %q\n",
			spec.Name, sent, float64(spec.DurationUS)/1e6, *send, *streamID)
		fmt.Printf("transport: %d batches sent, %d heartbeats; reconnected %d time(s), replayed %d batches (final epoch %d, acked through seq %d)\n",
			st.Sent, st.Heartbeats, st.Resumes, st.Replayed, st.Epoch, st.AckedSeq)
	}
	if *gtPath != "" {
		recs, err := annot.FromScene(rec.Scene, chunk, 40)
		if err != nil {
			return err
		}
		gt, err := os.Create(*gtPath)
		if err != nil {
			return err
		}
		defer gt.Close()
		if err := annot.Write(gt, recs); err != nil {
			return err
		}
	}
	if w != nil {
		fmt.Printf("%s: wrote %d events over %.1f s to %s (%d ground-truth tracks)\n",
			spec.Name, w.Count(), float64(spec.DurationUS)/1e6, *out, rec.Scene.TrackCount())
	}
	return nil
}
