// Command ebbiot-gen synthesises a traffic recording (Table I replica) and
// writes it as a binary AER file, plus optional ground-truth annotations as
// CSV.
//
// Usage:
//
//	ebbiot-gen -preset ENG -scale 0.01 -seed 1 -out eng.aer [-gt eng_gt.csv]
//
// At -scale 1 the ENG preset emits the full 2998.4 s / ~10^8-event
// recording; small scales produce statistically identical but shorter
// replicas.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ebbiot/internal/aedat"
	"ebbiot/internal/annot"
	"ebbiot/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	presetName := flag.String("preset", "ENG", "recording preset: ENG or LT4")
	scale := flag.Float64("scale", 0.01, "duration scale in (0,1]; 1 = full Table I length")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "", "output AER file (required)")
	gtPath := flag.String("gt", "", "optional ground-truth CSV output")
	frameMS := flag.Int64("frame-ms", 66, "generation chunk size in milliseconds")
	flag.Parse()

	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	var preset dataset.Preset
	switch strings.ToUpper(*presetName) {
	case "ENG":
		preset = dataset.ENG
	case "LT4":
		preset = dataset.LT4
	default:
		return fmt.Errorf("unknown preset %q (want ENG or LT4)", *presetName)
	}
	spec, err := dataset.For(preset, *scale, *seed)
	if err != nil {
		return err
	}
	rec, err := dataset.Generate(spec)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := aedat.NewWriter(f, spec.Sensor.Res)
	if err != nil {
		return err
	}

	chunk := *frameMS * 1000
	for cursor := int64(0); cursor < spec.DurationUS; {
		end := cursor + chunk
		if end > spec.DurationUS {
			end = spec.DurationUS
		}
		evs, err := rec.Sim.Events(cursor, end)
		if err != nil {
			return err
		}
		if err := w.Append(evs); err != nil {
			return err
		}
		cursor = end
	}
	if err := w.Close(); err != nil {
		return err
	}
	if *gtPath != "" {
		recs, err := annot.FromScene(rec.Scene, chunk, 40)
		if err != nil {
			return err
		}
		gt, err := os.Create(*gtPath)
		if err != nil {
			return err
		}
		defer gt.Close()
		if err := annot.Write(gt, recs); err != nil {
			return err
		}
	}
	fmt.Printf("%s: wrote %d events over %.1f s to %s (%d ground-truth tracks)\n",
		spec.Name, w.Count(), float64(spec.DurationUS)/1e6, *out, rec.Scene.TrackCount())
	return nil
}
