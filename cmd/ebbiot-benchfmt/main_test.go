package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ebbiot/internal/imgproc
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkMedianPacked/p=3-8         	   22690	     50524 ns/op	       0 B/op	       0 allocs/op
BenchmarkCCAPacked-8                	   14431	     82936 ns/op	  107624 B/op	      25 allocs/op
PASS
ok  	ebbiot/internal/imgproc	4.862s
pkg: ebbiot/internal/store
BenchmarkAppend-8   	 2404440	       499.0 ns/op	 178.34 MB/s	      88 B/op	       1 allocs/op
BenchmarkReplay     	      68	  16426477 ns/op	 541.81 MB/s	         1.000 segment-reads/segment
PASS
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4", len(got))
	}
	r := got[0]
	if r.Pkg != "ebbiot/internal/imgproc" || r.Name != "BenchmarkMedianPacked/p=3" ||
		r.Iterations != 22690 || r.NsPerOp != 50524 || r.BytesPerOp == nil || *r.BytesPerOp != 0 ||
		r.AllocsOp == nil || *r.AllocsOp != 0 {
		t.Fatalf("result 0 = %+v", r)
	}
	r = got[2]
	if r.Pkg != "ebbiot/internal/store" || r.Name != "BenchmarkAppend" || r.NsPerOp != 499 {
		t.Fatalf("result 2 = %+v", r)
	}
	if r.Metrics["MB/s"] != 178.34 {
		t.Fatalf("result 2 metrics = %v", r.Metrics)
	}
	r = got[3]
	if r.Name != "BenchmarkReplay" || r.Metrics["segment-reads/segment"] != 1 {
		t.Fatalf("result 3 = %+v", r)
	}
}

// TestParseCountDedup pins the -count de-noising: repeated runs of the
// same benchmark collapse to the fastest repetition, in first-seen order,
// and same-named benchmarks in different packages stay distinct.
func TestParseCountDedup(t *testing.T) {
	const repeated = `pkg: ebbiot/internal/imgproc
BenchmarkMedianPacked-8    100    900 ns/op
BenchmarkMedianPacked-8    100    700 ns/op    3 B/op
BenchmarkMedianPacked-8    100    800 ns/op
BenchmarkCCAPacked-8       100    500 ns/op
pkg: ebbiot/internal/store
BenchmarkMedianPacked-8    100    100 ns/op
`
	got, err := parse(strings.NewReader(repeated), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(got), got)
	}
	r := got[0]
	if r.Pkg != "ebbiot/internal/imgproc" || r.Name != "BenchmarkMedianPacked" || r.NsPerOp != 700 {
		t.Fatalf("result 0 = %+v, want the fastest imgproc repetition", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 3 {
		t.Fatalf("result 0 must carry the winning repetition's memstats: %+v", r)
	}
	if got[1].Name != "BenchmarkCCAPacked" {
		t.Fatalf("result 1 = %+v, want first-seen order kept", got[1])
	}
	if got[2].Pkg != "ebbiot/internal/store" || got[2].NsPerOp != 100 {
		t.Fatalf("result 2 = %+v, want the store package kept distinct", got[2])
	}
}

func res(pkg, name string, ns float64) Result {
	return Result{Pkg: pkg, Name: name, Iterations: 1, NsPerOp: ns}
}

func TestCompare(t *testing.T) {
	old := []Result{
		res("p", "BenchmarkMedian", 1000),
		res("p", "BenchmarkDownsample", 500),
		res("p", "BenchmarkRetired", 42),
		res("q", "BenchmarkOther", 100),
	}
	cur := []Result{
		res("p", "BenchmarkMedian", 1300), // +30%: regression at 15%
		res("p", "BenchmarkDownsample", 400),
		res("p", "BenchmarkFresh", 7),
		res("q", "BenchmarkOther", 90),
	}
	var buf strings.Builder
	if got := compare(&buf, old, cur, 15, 0, nil); got != 1 {
		t.Fatalf("regressions = %d, want 1; output:\n%s", got, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"BenchmarkMedian", "+30.0%", "REGRESSION",
		"BenchmarkDownsample", "-20.0%",
		"3 compared, 1 regression(s), 1 only in old, 1 only in new",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Within tolerance: the same +30% passes at 50%.
	buf.Reset()
	if got := compare(&buf, old, cur, 50, 0, nil); got != 0 {
		t.Fatalf("regressions at 50%% tolerance = %d, want 0", got)
	}

	// -min-ns: a +30% swing on a benchmark under the floor on both sides is
	// reported but does not fail; above the floor it still does.
	buf.Reset()
	if got := compare(&buf, old, cur, 15, 2000, nil); got != 0 {
		t.Fatalf("regressions under 2000ns floor = %d, want 0; output:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "below 2000ns floor") {
		t.Errorf("floor annotation missing:\n%s", buf.String())
	}
	buf.Reset()
	if got := compare(&buf, old, cur, 15, 1200, nil); got != 1 {
		t.Fatalf("regressions with 1200ns floor = %d, want 1 (head 1300 above floor); output:\n%s",
			got, buf.String())
	}

	// -match restricts both the comparison and the failure.
	buf.Reset()
	if got := compare(&buf, old, cur, 15, 0, regexp.MustCompile("Downsample")); got != 0 {
		t.Fatalf("matched regressions = %d, want 0", got)
	}
	if !strings.Contains(buf.String(), "1 compared, 0 regression(s)") {
		t.Errorf("match summary wrong:\n%s", buf.String())
	}
}

// TestRunCompare covers the file-level wrapper and its exit codes.
func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rs []Result) string {
		data, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", []Result{res("p", "BenchmarkMedian", 1000)})
	same := write("same.json", []Result{res("p", "BenchmarkMedian", 1010)})
	slow := write("slow.json", []Result{res("p", "BenchmarkMedian", 2000)})
	if code := runCompare([]string{oldPath, same}); code != 0 {
		t.Errorf("clean compare exit = %d, want 0", code)
	}
	if code := runCompare([]string{oldPath, slow}); code != 1 {
		t.Errorf("regressed compare exit = %d, want 1", code)
	}
	if code := runCompare([]string{"-tolerance", "150", oldPath, slow}); code != 0 {
		t.Errorf("tolerant compare exit = %d, want 0", code)
	}
	if code := runCompare([]string{"-min-ns", "5000", oldPath, slow}); code != 0 {
		t.Errorf("below-floor compare exit = %d, want 0", code)
	}
	if code := runCompare([]string{oldPath}); code != 2 {
		t.Errorf("usage error exit = %d, want 2", code)
	}
	if code := runCompare([]string{oldPath, filepath.Join(dir, "missing.json")}); code != 2 {
		t.Errorf("missing file exit = %d, want 2", code)
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo/p=3-16": "BenchmarkFoo/p=3",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar",
	} {
		if got := trimProcs(in); got != want {
			t.Fatalf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
