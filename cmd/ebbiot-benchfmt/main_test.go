package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ebbiot/internal/imgproc
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkMedianPacked/p=3-8         	   22690	     50524 ns/op	       0 B/op	       0 allocs/op
BenchmarkCCAPacked-8                	   14431	     82936 ns/op	  107624 B/op	      25 allocs/op
PASS
ok  	ebbiot/internal/imgproc	4.862s
pkg: ebbiot/internal/store
BenchmarkAppend-8   	 2404440	       499.0 ns/op	 178.34 MB/s	      88 B/op	       1 allocs/op
BenchmarkReplay     	      68	  16426477 ns/op	 541.81 MB/s	         1.000 segment-reads/segment
PASS
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4", len(got))
	}
	r := got[0]
	if r.Pkg != "ebbiot/internal/imgproc" || r.Name != "BenchmarkMedianPacked/p=3" ||
		r.Iterations != 22690 || r.NsPerOp != 50524 || r.BytesPerOp == nil || *r.BytesPerOp != 0 ||
		r.AllocsOp == nil || *r.AllocsOp != 0 {
		t.Fatalf("result 0 = %+v", r)
	}
	r = got[2]
	if r.Pkg != "ebbiot/internal/store" || r.Name != "BenchmarkAppend" || r.NsPerOp != 499 {
		t.Fatalf("result 2 = %+v", r)
	}
	if r.Metrics["MB/s"] != 178.34 {
		t.Fatalf("result 2 metrics = %v", r.Metrics)
	}
	r = got[3]
	if r.Name != "BenchmarkReplay" || r.Metrics["segment-reads/segment"] != 1 {
		t.Fatalf("result 3 = %+v", r)
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo/p=3-16": "BenchmarkFoo/p=3",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar",
	} {
		if got := trimProcs(in); got != want {
			t.Fatalf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
