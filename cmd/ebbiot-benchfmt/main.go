// Command ebbiot-benchfmt converts `go test -bench` text output into
// machine-readable JSON, so the perf trajectory of the frame kernels and
// the snapshot store can be tracked across PRs (the `make bench-json`
// target writes BENCH.json and CI uploads it as an artifact).
//
// It reads benchmark output on stdin and writes a JSON array of results:
// one object per benchmark line with the package (from the preceding
// "pkg:" header), the benchmark name (GOMAXPROCS suffix stripped),
// iterations, ns/op, and — when -benchmem is in effect — B/op and
// allocs/op. Custom metrics (MB/s, anything reported via b.ReportMetric)
// land in the metrics map. Non-benchmark lines pass through untouched to
// stderr with -tee, so the human-readable output is not lost in pipelines.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | ebbiot-benchfmt [-o BENCH.json] [-tee]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	tee := flag.Bool("tee", false, "echo the raw input to stderr")
	flag.Parse()
	results, err := parse(os.Stdin, *tee)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-benchfmt:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebbiot-benchfmt:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-benchfmt:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ebbiot-benchfmt: %d benchmark(s)\n", len(results))
}

// parse consumes go test -bench output. Benchmark lines look like
//
//	BenchmarkName-8   123   456.7 ns/op   12 B/op   3 allocs/op   1.0 MB/s
//
// preceded by "pkg: <import path>" headers in multi-package runs.
func parse(f io.Reader, tee bool) ([]Result, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results := []Result{}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if tee {
			fmt.Fprintln(os.Stderr, line)
		}
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Pkg: pkg, Name: trimProcs(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				b := v
				r.BytesPerOp = &b
			case "allocs/op":
				a := v
				r.AllocsOp = &a
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// trimProcs strips the -GOMAXPROCS suffix go test appends to benchmark
// names ("BenchmarkFoo-8" -> "BenchmarkFoo"), keeping names stable across
// machines.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
