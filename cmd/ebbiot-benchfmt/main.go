// Command ebbiot-benchfmt converts `go test -bench` text output into
// machine-readable JSON, so the perf trajectory of the frame kernels and
// the snapshot store can be tracked across PRs (the `make bench-json`
// target writes BENCH.json and CI uploads it as an artifact).
//
// It reads benchmark output on stdin and writes a JSON array of results:
// one object per benchmark line with the package (from the preceding
// "pkg:" header), the benchmark name (GOMAXPROCS suffix stripped),
// iterations, ns/op, and — when -benchmem is in effect — B/op and
// allocs/op. Custom metrics (MB/s, anything reported via b.ReportMetric)
// land in the metrics map. Non-benchmark lines pass through untouched to
// stderr with -tee, so the human-readable output is not lost in pipelines.
//
// The compare subcommand diffs two such JSON files and fails on
// regressions, which is how CI gates kernel performance: every benchmark
// present in both files is compared on ns/op, percent deltas are printed,
// and any slowdown beyond -tolerance percent exits nonzero (after listing
// every regression, not just the first).
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | ebbiot-benchfmt [-o BENCH.json] [-tee]
//	ebbiot-benchfmt compare [-tolerance 15] [-match regex] old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	out := flag.String("o", "", "output file (default stdout)")
	tee := flag.Bool("tee", false, "echo the raw input to stderr")
	flag.Parse()
	results, err := parse(os.Stdin, *tee)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-benchfmt:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ebbiot-benchfmt:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-benchfmt:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ebbiot-benchfmt: %d benchmark(s)\n", len(results))
}

// parse consumes go test -bench output. Benchmark lines look like
//
//	BenchmarkName-8   123   456.7 ns/op   12 B/op   3 allocs/op   1.0 MB/s
//
// preceded by "pkg: <import path>" headers in multi-package runs. When a
// benchmark repeats (go test -count N), only the fastest ns/op repetition
// is kept: the minimum is the run least disturbed by scheduler noise, so
// -count turns a single noisy sample into a de-noised one — which is what
// the compare gate wants on shared/virtualized CPUs.
func parse(f io.Reader, tee bool) ([]Result, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results := []Result{}
	index := map[string]int{}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if tee {
			fmt.Fprintln(os.Stderr, line)
		}
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Pkg: pkg, Name: trimProcs(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				b := v
				r.BytesPerOp = &b
			case "allocs/op":
				a := v
				r.AllocsOp = &a
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		if at, ok := index[benchKey(r)]; ok {
			if r.NsPerOp < results[at].NsPerOp {
				results[at] = r
			}
			continue
		}
		index[benchKey(r)] = len(results)
		results = append(results, r)
	}
	return results, sc.Err()
}

// runCompare implements the compare subcommand: load two BENCH.json files,
// diff ns/op per benchmark, and return the process exit code (1 when any
// regression exceeds the tolerance, 2 on usage or load errors).
func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	tol := fs.Float64("tolerance", 15, "allowed ns/op slowdown in percent before failing")
	minNS := fs.Float64("min-ns", 0, "ns/op floor: slowdowns on benchmarks faster than this (both sides) are reported but never fail")
	match := fs.String("match", "", "regexp limiting the comparison to matching benchmark names")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ebbiot-benchfmt compare [-tolerance pct] [-min-ns ns] [-match regexp] old.json new.json")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	var re *regexp.Regexp
	if *match != "" {
		var err error
		if re, err = regexp.Compile(*match); err != nil {
			fmt.Fprintln(os.Stderr, "ebbiot-benchfmt: bad -match:", err)
			return 2
		}
	}
	old, err := loadResults(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-benchfmt:", err)
		return 2
	}
	cur, err := loadResults(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-benchfmt:", err)
		return 2
	}
	regressions := compare(os.Stdout, old, cur, *tol, *minNS, re)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "ebbiot-benchfmt: %d regression(s) beyond %.1f%%\n", regressions, *tol)
		return 1
	}
	return 0
}

func loadResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// benchKey identifies a benchmark across files; the package qualifies the
// name so same-named benchmarks in different packages stay distinct.
func benchKey(r Result) string {
	if r.Pkg == "" {
		return r.Name
	}
	return r.Pkg + "." + r.Name
}

// compare prints one line per benchmark present in both runs — old and new
// ns/op plus the percent delta, flagging slowdowns beyond tol — and
// summarises benchmarks present on only one side (renames and new coverage
// are informational, never failures). Slowdowns on benchmarks whose ns/op is
// below minNS on both sides are likewise informational: such runs sit under
// the code-layout noise floor of small machines, where relinking alone moves
// them by tens of percent. It returns the regression count.
func compare(w io.Writer, old, cur []Result, tol, minNS float64, re *regexp.Regexp) int {
	oldBy := make(map[string]Result, len(old))
	for _, r := range old {
		oldBy[benchKey(r)] = r
	}
	curKeys := make(map[string]bool, len(cur))
	compared, regressions, onlyNew := 0, 0, 0
	for _, r := range cur {
		key := benchKey(r)
		curKeys[key] = true
		if re != nil && !re.MatchString(r.Name) {
			continue
		}
		prev, ok := oldBy[key]
		if !ok {
			onlyNew++
			continue
		}
		if prev.NsPerOp <= 0 {
			continue
		}
		compared++
		delta := (r.NsPerOp - prev.NsPerOp) / prev.NsPerOp * 100
		flag := ""
		if delta > tol {
			if prev.NsPerOp < minNS && r.NsPerOp < minNS {
				flag = fmt.Sprintf("  below %.0fns floor, not failing", minNS)
			} else {
				flag = fmt.Sprintf("  REGRESSION (> %.1f%%)", tol)
				regressions++
			}
		}
		fmt.Fprintf(w, "%-60s %12.1f -> %12.1f ns/op  %+7.1f%%%s\n", r.Name, prev.NsPerOp, r.NsPerOp, delta, flag)
	}
	onlyOld := 0
	for _, r := range old {
		if re != nil && !re.MatchString(r.Name) {
			continue
		}
		if !curKeys[benchKey(r)] {
			onlyOld++
		}
	}
	fmt.Fprintf(w, "%d compared, %d regression(s), %d only in old, %d only in new\n",
		compared, regressions, onlyOld, onlyNew)
	return regressions
}

// trimProcs strips the -GOMAXPROCS suffix go test appends to benchmark
// names ("BenchmarkFoo-8" -> "BenchmarkFoo"), keeping names stable across
// machines.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
