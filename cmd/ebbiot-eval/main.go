// Command ebbiot-eval reproduces Fig. 4: it evaluates EBBIOT, EBBI+KF and
// EBMS over synthetic ENG and LT4 replicas and prints the weighted-average
// precision/recall at each IoU threshold.
//
// The 3 systems x 2 recordings grid is sharded across pipeline workers;
// scores are identical for any -workers value. The EBBI-based systems run
// the packed word-parallel frame kernels; -reference selects the
// byte-per-pixel cost-model path instead — the scores are bit-identical
// either way, so the flag exists for timing comparisons and for
// distrust-but-verify reruns of the fast path.
//
// Usage:
//
//	ebbiot-eval [-seconds 25] [-seed 11] [-workers 0] [-reference]
package main

import (
	"flag"
	"fmt"
	"os"

	"ebbiot/internal/core"
	"ebbiot/internal/dataset"
	"ebbiot/internal/eval"
	"ebbiot/internal/metrics"
	"ebbiot/internal/roe"
	"ebbiot/internal/vis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ebbiot-eval:", err)
		os.Exit(1)
	}
}

func run() error {
	seconds := flag.Float64("seconds", 25, "replica length per recording in seconds")
	seed := flag.Uint64("seed", 11, "generator seed")
	workers := flag.Int("workers", 0, "worker goroutines sharding the system x recording grid (0 = one per CPU)")
	reference := flag.Bool("reference", false, "use the byte-per-pixel reference frame chain instead of the packed word-parallel fast path")
	flag.Parse()
	if *seconds <= 0 {
		return fmt.Errorf("-seconds must be positive")
	}

	mask := roe.New(dataset.TreeROEENG())
	factories := map[string]eval.SystemFactory{
		"EBBIOT": func() (core.System, error) {
			cfg := core.DefaultConfig().WithROE(mask)
			cfg.Reference = *reference
			return core.NewEBBIOT(cfg)
		},
		"EBBI+KF": func() (core.System, error) {
			cfg := core.DefaultKFConfig()
			cfg.ROE = mask
			cfg.Reference = *reference
			return core.NewEBBIKF(cfg)
		},
		"EBMS": func() (core.System, error) {
			cfg := core.DefaultEBMSConfig()
			cfg.ROE = mask
			return core.NewEBMS(cfg)
		},
	}
	recs := []eval.RecordingSpec{
		{Name: "ENG", Preset: dataset.ENG, Scale: *seconds / 2998.4, Seed: *seed},
		{Name: "LT4", Preset: dataset.LT4, Scale: *seconds / 999.5, Seed: *seed + 2},
	}
	opt := eval.DefaultOptions()
	opt.Workers = *workers
	results, err := eval.CompareSystems(factories, recs, metrics.DefaultThresholds(), opt)
	if err != nil {
		return err
	}

	fmt.Println("# Fig. 4 reproduction: weighted-average precision/recall vs IoU threshold")
	fmt.Printf("%-10s", "system")
	for _, p := range results[0].Points {
		fmt.Printf("  P@%.1f  R@%.1f", p.IoUThreshold, p.IoUThreshold)
	}
	fmt.Println()
	for _, r := range results {
		fmt.Printf("%-10s", r.System)
		for _, p := range r.Points {
			fmt.Printf("  %5.3f  %5.3f", p.Precision, p.Recall)
		}
		fmt.Println()
	}

	var prec, rec2 []vis.Series
	for _, r := range results {
		var xs, ps, rs []float64
		for _, p := range r.Points {
			xs = append(xs, p.IoUThreshold)
			ps = append(ps, p.Precision)
			rs = append(rs, p.Recall)
		}
		prec = append(prec, vis.Series{Name: r.System, X: xs, Y: ps})
		rec2 = append(rec2, vis.Series{Name: r.System, X: xs, Y: rs})
	}
	if chart, err := vis.Chart(prec, 56, 12); err == nil {
		fmt.Println("\n# Precision vs IoU threshold")
		fmt.Print(chart)
	}
	if chart, err := vis.Chart(rec2, 56, 12); err == nil {
		fmt.Println("\n# Recall vs IoU threshold")
		fmt.Print(chart)
	}

	fmt.Println("\n# Per-recording detail (unweighted)")
	for _, r := range results {
		for _, pr := range r.PerRecording {
			fmt.Printf("%-10s %-4s (weight %d):", r.System, pr.Name, pr.TrackWeight)
			for _, p := range pr.Points {
				fmt.Printf("  %5.3f/%5.3f", p.Precision, p.Recall)
			}
			fmt.Println()
		}
	}
	return nil
}
