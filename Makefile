GO ?= go

.PHONY: build test race bench bench-store vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Store append/scan/replay benchmarks (see docs/EXPERIMENTS.md for the
# 1-CPU container caveats).
bench-store:
	$(GO) test -run xxx -bench . -benchmem ./internal/store/

vet:
	$(GO) vet ./...

check: build vet test
