GO ?= go

.PHONY: build test race bench bench-store bench-imgproc vet check smoke-control

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Store append/scan/replay benchmarks (see docs/EXPERIMENTS.md for the
# 1-CPU container caveats).
bench-store:
	$(GO) test -run xxx -bench . -benchmem ./internal/store/

# Frame-kernel benchmarks: byte reference vs packed word-parallel median,
# downsample, histograms and CCA, plus the fused EBBI window chain
# (before/after numbers recorded in docs/EXPERIMENTS.md).
bench-imgproc:
	$(GO) test -run xxx -bench . -benchmem ./internal/imgproc/ ./internal/ebbi/

vet:
	$(GO) vet ./...

# End-to-end control-plane smoke (also run by CI): start a paced synthetic
# run with the HTTP control plane, exercise every endpoint against the live
# run — including a PATCH that must bump the version and an invalid PATCH
# that must 400 — and require a clean exit.
smoke-control:
	$(GO) build -o bin/ ./cmd/ebbiot-run
	./scripts/smoke-control.sh

check: build vet test
