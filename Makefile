GO ?= go

.PHONY: build test race bench vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

vet:
	$(GO) vet ./...

check: build vet test
