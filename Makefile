GO ?= go
# Benchtime for the machine-readable bench run; raise for stabler numbers.
BENCHTIME ?= 100ms

# bench-json pipes go test into the formatter; without pipefail a failing
# benchmark would exit with the formatter's (successful) status and CI
# would upload a truncated artifact while staying green.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: build test race bench bench-store bench-imgproc bench-json vet check smoke-control

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Store append/scan/replay benchmarks (see docs/EXPERIMENTS.md for the
# 1-CPU container caveats).
bench-store:
	$(GO) test -run xxx -bench . -benchmem ./internal/store/

# Frame-kernel benchmarks: byte reference vs packed word-parallel median,
# downsample, histograms and CCA, plus the fused EBBI window chain
# (before/after numbers recorded in docs/EXPERIMENTS.md).
bench-imgproc:
	$(GO) test -run xxx -bench . -benchmem ./internal/imgproc/ ./internal/ebbi/

# Machine-readable benchmark results for cross-PR perf tracking: the hot
# packages' benchmarks (frame kernels, EBBI window chain, snapshot store)
# parsed into BENCH.json (name, ns/op, B/op, allocs/op, custom metrics).
# CI runs this and uploads the artifact.
bench-json:
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) \
		./internal/imgproc/ ./internal/ebbi/ ./internal/store/ \
		| $(GO) run ./cmd/ebbiot-benchfmt -o BENCH.json -tee

vet:
	$(GO) vet ./...

# End-to-end control-plane smoke (also run by CI): start a paced synthetic
# run with the HTTP control plane, exercise every endpoint against the live
# run — including a PATCH that must bump the version and an invalid PATCH
# that must 400 — and require a clean exit.
smoke-control:
	$(GO) build -o bin/ ./cmd/ebbiot-run
	./scripts/smoke-control.sh

check: build vet test
