GO ?= go
# Benchtime for the machine-readable bench run; raise for stabler numbers.
BENCHTIME ?= 100ms
# Repetitions per benchmark for the machine-readable run; ebbiot-benchfmt
# keeps the fastest repetition, so -count > 1 filters scheduler-steal noise
# on shared CPUs.
BENCHCOUNT ?= 1

# bench-json pipes go test into the formatter; without pipefail a failing
# benchmark would exit with the formatter's (successful) status and CI
# would upload a truncated artifact while staying green.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: build test race bench bench-store bench-imgproc bench-json bench-compare bench-gate vet check smoke-control smoke-ingest crash-drill chaos-ingest

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Store append/scan/replay benchmarks (see docs/EXPERIMENTS.md for the
# 1-CPU container caveats).
bench-store:
	$(GO) test -run xxx -bench . -benchmem ./internal/store/

# Frame-kernel benchmarks: byte reference vs packed word-parallel median,
# downsample, histograms and CCA, plus the fused EBBI window chain
# (before/after numbers recorded in docs/EXPERIMENTS.md).
bench-imgproc:
	$(GO) test -run xxx -bench . -benchmem ./internal/imgproc/ ./internal/ebbi/

# Machine-readable benchmark results for cross-PR perf tracking: the hot
# packages' benchmarks (frame kernels, EBBI window chain, the fused core
# window path, snapshot store) parsed into BENCH.json (name, ns/op, B/op,
# allocs/op, custom metrics). CI runs this and uploads the artifact.
bench-json:
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) \
		./internal/imgproc/ ./internal/ebbi/ ./internal/core/ ./internal/store/ \
		| $(GO) run ./cmd/ebbiot-benchfmt -o BENCH.json -tee

# Regression gate: measure ONLY the gated benchmarks (median, downsample,
# histograms, popcount, the fused ProcessWindow path) de-noised, then diff
# against BENCH_OLD
# (default: the committed baseline snapshot). Any gated benchmark slowing
# down more than BENCH_TOLERANCE percent on ns/op fails the target.
# Refresh the baseline deliberately with `BENCHTIME=300ms BENCHCOUNT=5
# make bench-json && cp BENCH.json BENCH_baseline.json` (matching the
# gate's settings) when a perf change is intentional.
#
# Noise model, measured on this container: the shared vCPU drifts 20-55%
# on a minutes timescale, which no tolerance below "algorithmic
# regression" territory can absorb across sequential runs — so treat this
# target as ADVISORY. The authoritative gate is bench-gate below (what CI
# runs): an interleaved A/B comparison where base and head alternate
# repetition by repetition, sampling the same machine phases, with the
# benchfmt parser keeping each side's fastest repetition. There 15%
# catches real regressions (which land as 2x+); here, against a committed
# snapshot from another machine or day, expect drift — override
# BENCH_TOLERANCE or refresh the baseline.
BENCH_TOLERANCE ?= 15
BENCH_MATCH ?= Median|Downsample|Histograms|Popcount|ProcessWindow
BENCH_OLD ?= BENCH_baseline.json
BENCH_MIN_NS ?= 2000
bench-compare:
	$(GO) test -run xxx -bench '$(BENCH_MATCH)' -benchmem -benchtime 300ms -count 5 \
		./internal/imgproc/ ./internal/ebbi/ ./internal/core/ ./internal/store/ \
		| $(GO) run ./cmd/ebbiot-benchfmt -o BENCH.json -tee
	$(GO) run ./cmd/ebbiot-benchfmt compare -tolerance $(BENCH_TOLERANCE) \
		-min-ns $(BENCH_MIN_NS) -match '$(BENCH_MATCH)' $(BENCH_OLD) BENCH.json

# The authoritative regression gate (what CI runs on PRs): interleaved
# A/B comparison of two source trees on this machine — alternating
# base/head executions repetition by repetition so both sides sample the
# same machine phases, which is the only scheme that holds a 15% tolerance
# on a drifting vCPU. BASE defaults to a worktree of the merge base.
BENCH_BASE ?=
bench-gate:
	@test -n "$(BENCH_BASE)" || { echo "usage: make bench-gate BENCH_BASE=/path/to/base/tree"; exit 2; }
	BENCH_TOLERANCE=$(BENCH_TOLERANCE) ./scripts/bench-gate.sh $(BENCH_BASE) .

# Store crash drill (also run by CI): the randomized kill-point fault
# matrix — clean kills, torn tails, bit flips, junk sidecars, stray
# manifest temps, plus real SIGKILLed writer processes — under the race
# detector, over a fixed seed matrix so a failure reproduces exactly.
# Widen locally with CRASH_DRILL_SEEDS / CRASH_DRILL_POINTS.
CRASH_DRILL_SEEDS ?= 1 2 3
crash-drill:
	for seed in $(CRASH_DRILL_SEEDS); do \
		echo "== crash drill, seed $$seed =="; \
		CRASH_DRILL_SEED=$$seed $(GO) test -race -count=1 -run 'TestCrashDrill' ./internal/store/; \
	done

# Ingest chaos drill (also run by CI): stream a deterministic recording
# over loopback TCP while randomly killing the connection mid-stream, let
# the sink reconnect with the wire-v2 RESUME handshake and replay its
# unacknowledged tail, and require the tracked output to be bit-identical
# to an uninterrupted run — under the race detector, over a fixed seed
# matrix so a failure reproduces exactly. Widen locally with
# CHAOS_INGEST_SEEDS.
CHAOS_INGEST_SEEDS ?= 1 2 3
chaos-ingest:
	for seed in $(CHAOS_INGEST_SEEDS); do \
		echo "== ingest chaos drill, seed $$seed =="; \
		CHAOS_SEED=$$seed $(GO) test -race -count=1 -run 'TestChaosKillResumeBitIdentical' ./internal/ingest/; \
	done

vet:
	$(GO) vet ./...

# End-to-end control-plane smoke (also run by CI): start a paced synthetic
# run with the HTTP control plane, exercise every endpoint against the live
# run — including a PATCH that must bump the version and an invalid PATCH
# that must 400 — and require a clean exit.
smoke-control:
	$(GO) build -o bin/ ./cmd/ebbiot-run
	./scripts/smoke-control.sh

# End-to-end network-ingest smoke (also run by CI): ebbiot-run as a
# two-stream ingest server, a bad-token sender rejected, each stream fed a
# deterministic recording over loopback TCP by ebbiot-gen -send, the
# per-stream ingest counters probed over HTTP mid-run, and a lossless
# clean exit required.
smoke-ingest:
	$(GO) build -o bin/ ./cmd/ebbiot-run ./cmd/ebbiot-gen
	./scripts/smoke-ingest.sh

check: build vet test
